"""Bench T1 — regenerate Table I (dataset statistics).

Times the full collection pipeline (the paper's §III-A data production)
and prints the Table I rows plus provenance, asserting the calibrated
shape: ~13.8% US yield, ~1.88 tweets/user, ~1.03 organs/tweet.
"""

import pytest

from repro.dataset.stats import compute_stats
from repro.pipeline.runner import CollectionPipeline


@pytest.mark.benchmark(group="table1")
def test_table1_pipeline(benchmark, bench_world, bench_suite):
    corpus, report = benchmark.pedantic(
        lambda: CollectionPipeline().run(bench_world.firehose()),
        rounds=1,
        iterations=1,
    )
    stats = compute_stats(corpus)

    print()
    print(bench_suite.run_table1().render())

    assert report.us_yield == pytest.approx(0.138, abs=0.03)
    assert 1.5 < stats.avg_tweets_per_user < 2.2
    assert stats.organs_per_tweet == pytest.approx(1.03, abs=0.05)
    assert stats.organs_per_user == pytest.approx(1.13, abs=0.09)
    assert stats.days <= 385


@pytest.mark.benchmark(group="table1")
def test_table1_stats_computation(benchmark, bench_corpus):
    stats = benchmark(compute_stats, bench_corpus)
    assert stats.tweets_collected == len(bench_corpus)
