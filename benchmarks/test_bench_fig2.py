"""Bench F2 — regenerate Fig. 2 (organ popularity + multi-mention histogram).

Asserts the paper's shape: the Twitter popularity order (heart first,
intestine last), Spearman r ≈ .84 against 2012 transplant counts with the
heart inversion, and tweets > users only for single-organ mentions.
"""

import pytest

from repro.data.paper import PAPER_TWITTER_POPULARITY_ORDER
from repro.data.transplants import transplant_rank
from repro.dataset.stats import organ_mention_histogram, users_per_organ
from repro.organs import Organ


@pytest.mark.benchmark(group="fig2")
def test_fig2a_popularity_and_correlation(benchmark, bench_suite):
    result = benchmark(bench_suite.run_fig2)

    print()
    print(result.render())

    order = tuple(result.popularity_order())
    assert order == PAPER_TWITTER_POPULARITY_ORDER

    # Paper: r = .84, p < .05; heart 1st on Twitter but 3rd in transplants.
    assert result.correlation.r == pytest.approx(0.84, abs=0.06)
    assert result.correlation.significant
    assert order[0] is Organ.HEART
    assert transplant_rank()[2] is Organ.HEART


@pytest.mark.benchmark(group="fig2")
def test_fig2b_mention_histogram(benchmark, bench_corpus):
    histogram = benchmark(organ_mention_histogram, bench_corpus)
    tweets_1, users_1 = histogram[1]
    assert tweets_1 > users_1  # only k=1 has more tweets than users
    for k in range(2, 7):
        tweets_k, users_k = histogram[k]
        assert tweets_k <= users_k, f"k={k}"


@pytest.mark.benchmark(group="fig2")
def test_fig2a_users_per_organ_computation(benchmark, bench_corpus):
    counts = benchmark(users_per_organ, bench_corpus)
    assert counts[Organ.HEART] > counts[Organ.INTESTINE]
