"""Bench F5 — regenerate Fig. 5 (highlighted organs per state via RR).

Asserts the paper's reported findings hold in shape: Kansas shows a
kidney-conversation excess and is the only Midwest state to do so;
Louisiana shows kidney; Massachusetts shows lung; some states show no
significant organ at all, while others show more than one test-worthy
signal.
"""

import pytest

from repro.core.relative_risk import highlighted_organs, state_organ_risks
from repro.geo.gazetteer import CensusRegion, state_by_abbrev
from repro.organs import Organ


@pytest.mark.benchmark(group="fig5")
def test_fig5_highlighted_organs(benchmark, bench_corpus, bench_suite):
    highlights = benchmark.pedantic(
        highlighted_organs, args=(bench_corpus,), rounds=1, iterations=1
    )

    print()
    print(bench_suite.run_fig5().render())

    # Flagship anomalies (§IV-B1).
    assert Organ.KIDNEY in highlights["KS"]
    assert Organ.KIDNEY in highlights["LA"]
    assert Organ.LUNG in highlights["MA"]

    # Kansas is the only Midwestern state with a kidney excess.
    midwest_kidney = [
        state
        for state, organs in highlights.items()
        if Organ.KIDNEY in organs
        and state_by_abbrev(state).region is CensusRegion.MIDWEST
    ]
    assert midwest_kidney == ["KS"]

    # "for some states there are no significant excess for any organ".
    assert any(not organs for organs in highlights.values())
    # "other states have more than one highlighted organ" — at least the
    # overall map is non-trivial.
    assert sum(len(organs) for organs in highlights.values()) >= 5


@pytest.mark.benchmark(group="fig5")
def test_fig5_risk_computation(benchmark, bench_corpus):
    risks = benchmark(state_organ_risks, bench_corpus)
    states = {risk.state for risk in risks}
    assert len(states) >= 50
    ks_kidney = next(
        r for r in risks if r.state == "KS" and r.organ is Organ.KIDNEY
    )
    # The planted boost should express as RR meaningfully above 1.
    assert ks_kidney.result.rr > 1.3
