"""Micro-benchmarks for the substrates on the pipeline's hot path.

These are throughput measurements, not paper artifacts: tokenizer, track
filter, geocoder, organ matcher, K-Means, and the Bhattacharyya pairwise
kernel.  They guard against performance regressions that would make the
paper-scale (scale=1.0) reproduction impractical.
"""

import numpy as np
import pytest

from repro.cluster.distances import pairwise_distances
from repro.cluster.kmeans import KMeans
from repro.geo.geocoder import Geocoder
from repro.nlp.keywords import build_query_set, track_phrases
from repro.nlp.matcher import OrganMatcher
from repro.nlp.tokenize import tokenize
from repro.twitter.stream import TrackFilter

_SAMPLE_TEXTS = [
    "Be a kidney donor, save a life #DonateLife",
    "My mom just got her heart transplant, so grateful 🙏",
    "Month 14 on the liver transplant waitlist. Staying hopeful.",
    "nice sunset tonight, no filter",
    "Rare double transplant: heart and lungs from one donor 🙌",
    "#pancreastransplant awareness week — talk to your family",
] * 50

_SAMPLE_LOCATIONS = [
    "Wichita, KS", "boston", "NOLA", "somewhere over the rainbow",
    "Kansas, USA", "London", "living in kansas ☀", "CA", "new york city",
] * 30


@pytest.mark.benchmark(group="substrate")
def test_tokenizer_throughput(benchmark):
    def run():
        total = 0
        for text in _SAMPLE_TEXTS:
            total += len(tokenize(text))
        return total

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="substrate")
def test_track_filter_throughput(benchmark):
    track = TrackFilter(track_phrases(build_query_set()))

    def run():
        return sum(track.matches(text) for text in _SAMPLE_TEXTS)

    matched = benchmark(run)
    assert matched == 250  # 5 of 6 sample texts match, × 50


@pytest.mark.benchmark(group="substrate")
def test_geocoder_throughput_cold(benchmark):
    def run():
        geocoder = Geocoder()  # cold cache each round
        return sum(
            geocoder.geocode(loc).is_us_state for loc in _SAMPLE_LOCATIONS
        )

    located = benchmark(run)
    assert located == 210  # 7 of 9 sample locations resolve to states


@pytest.mark.benchmark(group="substrate")
def test_matcher_throughput(benchmark):
    matcher = OrganMatcher()

    def run():
        return sum(
            sum(matcher.mentions(text).values()) for text in _SAMPLE_TEXTS
        )

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="substrate")
def test_kmeans_paper_shape(benchmark):
    """K-Means on a Û-shaped matrix (20k × 6 one-hot-ish rows)."""
    rng = np.random.default_rng(0)
    rows = rng.dirichlet(np.full(6, 0.3), size=20_000)
    result = benchmark.pedantic(
        lambda: KMeans(k=12, n_init=2, seed=0).fit(rows),
        rounds=1,
        iterations=1,
    )
    assert result.k == 12


@pytest.mark.benchmark(group="substrate")
def test_bhattacharyya_pairwise_kernel(benchmark):
    rng = np.random.default_rng(1)
    rows = rng.dirichlet(np.ones(6), size=500)
    matrix = benchmark(pairwise_distances, rows, "bhattacharyya")
    assert matrix.shape == (500, 500)
