"""Bench F4 — regenerate Fig. 4 (per-state organ signatures).

Asserts the paper's reading: every state/territory gets a signature, most
states have heart first, and the second-most-mentioned organ splits the
states across kidney/liver/lung.
"""

import pytest

from repro.core.characterize import characterize_regions
from repro.organs import Organ


@pytest.mark.benchmark(group="fig4")
def test_fig4_state_signatures(benchmark, bench_corpus, bench_suite):
    characterization = benchmark.pedantic(
        characterize_regions, args=(bench_corpus,), rounds=1, iterations=1
    )

    print()
    print(bench_suite.run_fig4().render(states=("KS", "LA", "MA", "CA", "TX")))

    # All 50 states + DC + PR appear at bench scale.
    assert len(characterization.states) >= 50

    heart_first = sum(
        characterization.signature(state)[0][0] is Organ.HEART
        for state in characterization.states
    )
    assert heart_first >= 0.6 * len(characterization.states)

    seconds = {
        characterization.second_most_mentioned(state)
        for state in characterization.states
    }
    assert Organ.KIDNEY in seconds
    assert len(seconds) >= 2  # states split by their second organ

    # The planted Kansas anomaly is visible even in the raw signature.
    ks_top2 = [organ for organ, __ in characterization.signature("KS")[:2]]
    assert Organ.KIDNEY in ks_top2
