"""Bench S1 — the §IV/§V analyses the paper discusses without plotting.

Three claims, quantified and asserted:

* §IV-A: the common dual-transplant pairs (heart–kidney, liver–kidney,
  kidney–pancreas) rank among the most co-mentioned organ pairs.
* §V: the Midwest is under-represented relative to census population.
* §IV-B2: states sharing a highlighted organ co-cluster more often than
  cluster sizes alone predict.
"""

import pytest

from repro.analysis.bias import representation_bias
from repro.analysis.co_occurrence import organ_co_occurrence
from repro.analysis.consistency import highlight_cluster_consistency
from repro.analysis.timeseries import daily_series, detect_bursts
from repro.core.relative_risk import highlighted_organs
from repro.core.state_clusters import cluster_states
from repro.geo.gazetteer import CensusRegion
from repro.organs import Organ


@pytest.mark.benchmark(group="secondary")
def test_dual_transplant_co_occurrence(benchmark, bench_corpus, bench_suite):
    result = benchmark(organ_co_occurrence, bench_corpus, "user")
    print()
    print(bench_suite.run_secondary().render())

    top_pair = result.top_pairs(k=1)[0]
    assert {top_pair[0], top_pair[1]} == {Organ.HEART, Organ.KIDNEY}
    assert result.dual_transplant_rank() <= 5.0


@pytest.mark.benchmark(group="secondary")
def test_midwest_underrepresentation(benchmark, bench_corpus):
    bias = benchmark(representation_bias, bench_corpus)
    assert bias.region_ratio[CensusRegion.MIDWEST] < 1.0
    # The coastal regions are not damped.
    assert bias.region_ratio[CensusRegion.NORTHEAST] > bias.region_ratio[
        CensusRegion.MIDWEST
    ]


@pytest.mark.benchmark(group="secondary")
def test_highlight_cluster_consistency(benchmark, bench_suite, bench_corpus):
    clustering = cluster_states(bench_suite.region_characterization)
    highlights = highlighted_organs(bench_corpus)
    result = benchmark.pedantic(
        highlight_cluster_consistency,
        args=(clustering, highlights, 8),
        rounds=1,
        iterations=1,
    )
    assert result.same_highlight_pairs >= 5
    assert result.enrichment > 1.0


@pytest.mark.benchmark(group="secondary")
def test_fig3_bootstrap_stability(benchmark, bench_suite):
    """§IV-A's caveat, quantified: intestine's top-co-organ reading is
    less bootstrap-stable than heart's (tiny user group)."""
    from repro.analysis.stability import co_attention_stability

    stability = benchmark.pedantic(
        co_attention_stability,
        args=(bench_suite.attention,),
        kwargs={"n_replicates": 60, "seed": 1},
        rounds=1,
        iterations=1,
    )
    print()
    for organ, result in stability.items():
        print(
            f"{organ.value:<10} top={result.full_data_top.value:<8} "
            f"stability={result.stability:.2f} "
            f"(group size {result.group_size:,})"
        )
    assert stability[Organ.HEART].stability > 0.9
    assert (
        stability[Organ.INTESTINE].stability
        <= stability[Organ.HEART].stability
    )


@pytest.mark.benchmark(group="secondary")
def test_temporal_stationarity(benchmark, bench_corpus):
    """The 385-day aggregation is justified: half-vs-half K rows differ
    by < 0.01 Bhattacharyya and the major readings agree."""
    from repro.analysis.robustness import organ_characterization_stability

    stability = benchmark.pedantic(
        organ_characterization_stability,
        args=(bench_corpus,),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"mean half-vs-half row distance "
        f"{stability.mean_row_distance:.4f}; top-co-organ agreement "
        f"{stability.top_co_organ_agreement:.0%}"
    )
    assert stability.mean_row_distance < 0.01
    assert stability.top_co_organ_agreement >= 4 / 6


@pytest.mark.benchmark(group="secondary")
def test_support_group_threads(benchmark, bench_corpus):
    """Ref [13]: conversations form interest-aligned structures — reply
    threads are far more organ-homogeneous than shuffled chance."""
    from repro.network.conversations import thread_homogeneity

    result = benchmark.pedantic(
        thread_homogeneity, args=(bench_corpus,), rounds=1, iterations=1
    )
    print()
    print(
        f"{result.n_conversations} conversations; single-organ rate "
        f"{result.observed_single_organ_rate:.2f} vs shuffled "
        f"{result.shuffled_single_organ_rate:.2f} "
        f"(lift {result.lift:.2f}×)"
    )
    assert result.n_conversations > 100
    assert result.observed_single_organ_rate > 0.8
    assert result.lift > 1.1


@pytest.mark.benchmark(group="secondary")
def test_daily_volume_stationary(benchmark, bench_corpus):
    """Table I's 350 tweets/day is a stable average: the generated stream
    is stationary, so burst detection stays quiet."""
    series = benchmark(daily_series, bench_corpus)
    assert series.n_days >= 380
    bursts = detect_bursts(series, window=14, threshold=5.0)
    assert len(bursts) <= 2
