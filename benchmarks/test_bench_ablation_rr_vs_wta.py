"""Ablation A2 — relative risk vs winner-takes-all (§IV-B1).

"The simplest approach … is a winner-takes-all strategy.  However, since
some organs are much more prevalent than others, it is more likely to
find a greater number of users mentioning that organ everywhere."  We
show WTA labels (almost) every state heart and misses the planted
geographic anomalies that RR recovers.
"""

import pytest

from repro.core.relative_risk import highlighted_organs
from repro.core.wta import winner_takes_all
from repro.organs import Organ


@pytest.mark.benchmark(group="ablation-rr-vs-wta")
def test_wta_sees_only_heart_while_rr_finds_anomalies(benchmark, bench_corpus):
    wta = benchmark(winner_takes_all, bench_corpus)
    rr = highlighted_organs(bench_corpus)

    heart_states = sum(organ is Organ.HEART for organ in wta.values())
    print()
    print(
        f"WTA: {heart_states}/{len(wta)} states labelled heart; "
        f"RR: {sum(1 for o in rr.values() if o)} states with a significant "
        "non-trivial highlight"
    )

    # WTA: heart wins nearly everywhere (Fig. 4's point).
    assert heart_states >= 0.75 * len(wta)

    # RR finds the Kansas kidney anomaly.
    assert Organ.KIDNEY in rr["KS"]

    # WTA over-reports: its non-heart labels are raw-count noise in small
    # states, which the significance-tested RR correctly declines to
    # highlight.  At least one WTA kidney label must be RR-rejected.
    kidney_rr_states = {s for s, organs in rr.items() if Organ.KIDNEY in organs}
    kidney_wta_states = {s for s, organ in wta.items() if organ is Organ.KIDNEY}
    noise_labels = kidney_wta_states - kidney_rr_states
    assert noise_labels, "every WTA kidney label was RR-significant"

    # RR leaves no-signal states unlabelled; WTA labels everything.
    assert any(not organs for organs in rr.values())
    assert len(wta) == len(rr)

    # RR produces a non-degenerate map: several distinct organs appear.
    rr_organs = {organ for organs in rr.values() for organ in organs}
    assert len(rr_organs) >= 3
