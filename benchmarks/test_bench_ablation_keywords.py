"""Ablation A5 — sensitivity to the Fig. 1 vocabulary.

The dataset is defined by the Context × Subject keyword product.  This
ablation measures what each vocabulary layer buys: collection recall
against the world's ground-truth on-topic tweets under (a) the full
vocabulary, (b) canonical organ names only (no plurals/adjectives), and
(c) a minimal Context set ({donor, transplant}).  The full vocabulary's
extra surface forms recover a measurable share of the conversation that
narrower queries silently miss — the kind of sensitivity a collection
methodology section should report.
"""

import pytest

from repro.config import CollectionConfig
from repro.nlp.keywords import CONTEXT_TERMS
from repro.organs import ORGAN_NAMES
from repro.pipeline.collect import collect


def _recall(world, config: CollectionConfig) -> tuple[int, float]:
    """(#collected, recall vs ground-truth on-topic volume)."""
    stream = collect(world.firehose(), config)
    collected = sum(1 for __ in stream)
    return collected, collected / world.n_on_topic_tweets


@pytest.mark.benchmark(group="ablation-keywords")
def test_vocabulary_layers_buy_recall(benchmark, bench_world):
    full = CollectionConfig()
    canonical_only = CollectionConfig(subject_terms=ORGAN_NAMES)
    minimal_context = CollectionConfig(
        context_terms=("donor", "transplant")
    )

    def run_all():
        return {
            "full": _recall(bench_world, full),
            "canonical-subjects": _recall(bench_world, canonical_only),
            "minimal-context": _recall(bench_world, minimal_context),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    for name, (collected, recall) in results.items():
        print(f"{name:<20} collected {collected:>8,}  recall {recall:.3f}")

    full_recall = results["full"][1]
    canonical_recall = results["canonical-subjects"][1]
    minimal_recall = results["minimal-context"][1]

    # The full vocabulary captures essentially all on-topic traffic.
    assert full_recall > 0.99
    # Dropping plural/adjective subject forms loses a visible share
    # (tweets say "kidneys", "renal", "cardiac" …).
    assert canonical_recall < full_recall - 0.02
    # Shrinking the Context set loses even more.
    assert minimal_recall < full_recall - 0.05
    # But all variants remain on-topic-only: nothing over-collects.
    assert results["full"][0] <= bench_world.n_on_topic_tweets
