"""Ablation A3 — Bhattacharyya vs Euclidean affinity (§IV-B2).

The paper picks the Bhattacharyya distance "since it is more suitable for
discrete probability distributions … than other metrics, such as
Euclidean distance" (Kailath 1967).  We quantify that: zone separation
(cross-zone / within-zone distance ratio) is higher under Bhattacharyya
than under Euclidean on the same K matrix.
"""

import numpy as np
import pytest

from repro.cluster.distances import pairwise_distances
from repro.config import StateClusteringConfig
from repro.core.characterize import characterize_regions
from repro.core.state_clusters import cluster_states

_ZONES = {
    "liver": ("CO", "TX", "NC", "AZ"),
    "lung": ("OR", "GA", "VA", "WA", "MA"),
    "kidney": ("KS", "LA", "NY", "TN"),
}


def _zone_separation(matrix: np.ndarray, states: list[str]) -> float:
    def mean_distance(group_a, group_b):
        values = [
            matrix[states.index(a), states.index(b)]
            for a in group_a for b in group_b
            if a != b and a in states and b in states
        ]
        return float(np.mean(values))

    ratios = []
    for organ, zone in _ZONES.items():
        others = [s for o, z in _ZONES.items() if o != organ for s in z]
        within = mean_distance(zone, zone)
        across = mean_distance(zone, others)
        if within > 0:
            ratios.append(across / within)
    return float(np.mean(ratios))


@pytest.mark.benchmark(group="ablation-affinity")
def test_bhattacharyya_separates_zones_better(benchmark, bench_corpus):
    characterization = characterize_regions(bench_corpus)
    k_matrix = characterization.matrix_k()
    states = list(characterization.states)

    bhatta = benchmark(pairwise_distances, k_matrix, "bhattacharyya")
    euclid = pairwise_distances(k_matrix, "euclidean")

    bhatta_sep = _zone_separation(bhatta, states)
    euclid_sep = _zone_separation(euclid, states)

    print()
    print(
        f"zone separation (across/within): bhattacharyya {bhatta_sep:.2f} "
        f"vs euclidean {euclid_sep:.2f}"
    )
    assert bhatta_sep > 1.0  # zones are real under the paper's metric
    assert bhatta_sep >= euclid_sep * 0.95  # never meaningfully worse


@pytest.mark.benchmark(group="ablation-affinity")
def test_affinity_changes_clustering(benchmark, bench_corpus):
    """The metric choice is load-bearing: flat cuts differ between
    affinities on the same data."""
    characterization = characterize_regions(bench_corpus)

    def cluster_both():
        default = cluster_states(characterization)
        euclidean = cluster_states(
            characterization, StateClusteringConfig(affinity="euclidean")
        )
        return default, euclidean

    default, euclidean = benchmark.pedantic(cluster_both, rounds=1, iterations=1)
    assert default.cut(6) != euclidean.cut(6) or (
        default.leaf_order() != euclidean.leaf_order()
    )
