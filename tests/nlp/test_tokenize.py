"""Tests for the tweet tokenizer."""

from repro.nlp.tokenize import Token, TokenKind, tokenize, words


class TestBasicTokenization:
    def test_words_lowercased(self):
        tokens = tokenize("Be An Organ DONOR")
        assert [t.text for t in tokens] == ["be", "an", "organ", "donor"]
        assert all(t.kind is TokenKind.WORD for t in tokens)

    def test_empty_text(self):
        assert tokenize("") == ()

    def test_punctuation_ignored(self):
        assert [t.text for t in tokenize("kidney!!! donor???")] == [
            "kidney", "donor",
        ]

    def test_numbers(self):
        tokens = tokenize("waited 14 months")
        kinds = [t.kind for t in tokens]
        assert kinds == [TokenKind.WORD, TokenKind.NUMBER, TokenKind.WORD]

    def test_apostrophe_word_kept_whole(self):
        assert tokenize("donor's")[0].text == "donor's"

    def test_hyphen_compound_kept_whole(self):
        assert tokenize("kidney-liver")[0].text == "kidney-liver"


class TestTwitterEntities:
    def test_hashtag(self):
        token = tokenize("#DonateLife")[0]
        assert token == Token("donatelife", TokenKind.HASHTAG)

    def test_mention(self):
        token = tokenize("@UNOS")[0]
        assert token == Token("unos", TokenKind.MENTION)

    def test_url(self):
        token = tokenize("read https://example.org/organ-donor now")[1]
        assert token.kind is TokenKind.URL
        assert token.text.startswith("https://")

    def test_url_contents_not_tokenized_as_words(self):
        texts = [t.text for t in tokenize("https://example.org/kidney-donor")]
        assert texts == ["https://example.org/kidney-donor"]

    def test_mixed_tweet(self):
        tokens = tokenize("Be a #kidney donor @UNOS https://x.co 🙏")
        kinds = [t.kind for t in tokens]
        assert TokenKind.HASHTAG in kinds
        assert TokenKind.MENTION in kinds
        assert TokenKind.URL in kinds


class TestWordsHelper:
    def test_words_includes_hashtags(self):
        assert words("organ #donor") == ("organ", "donor")

    def test_words_excludes_mentions_urls_numbers(self):
        assert words("@unos 42 https://x.co organ") == ("organ",)


class TestCaching:
    def test_same_text_same_result(self):
        assert tokenize("kidney donor") is tokenize("kidney donor")

    def test_result_is_immutable_tuple(self):
        assert isinstance(tokenize("kidney donor"), tuple)
