"""Tests for the tweet tokenizer."""

import pytest

from repro.nlp.tokenize import (
    Token,
    TokenKind,
    scan_words_hashtags,
    split_compound,
    tokenize,
    words,
)


class TestBasicTokenization:
    def test_words_lowercased(self):
        tokens = tokenize("Be An Organ DONOR")
        assert [t.text for t in tokens] == ["be", "an", "organ", "donor"]
        assert all(t.kind is TokenKind.WORD for t in tokens)

    def test_empty_text(self):
        assert tokenize("") == ()

    def test_punctuation_ignored(self):
        assert [t.text for t in tokenize("kidney!!! donor???")] == [
            "kidney", "donor",
        ]

    def test_numbers(self):
        tokens = tokenize("waited 14 months")
        kinds = [t.kind for t in tokens]
        assert kinds == [TokenKind.WORD, TokenKind.NUMBER, TokenKind.WORD]

    def test_apostrophe_word_kept_whole(self):
        assert tokenize("donor's")[0].text == "donor's"

    def test_hyphen_compound_kept_whole(self):
        assert tokenize("kidney-liver")[0].text == "kidney-liver"


class TestTwitterEntities:
    def test_hashtag(self):
        token = tokenize("#DonateLife")[0]
        assert token == Token("donatelife", TokenKind.HASHTAG)

    def test_mention(self):
        token = tokenize("@UNOS")[0]
        assert token == Token("unos", TokenKind.MENTION)

    def test_url(self):
        token = tokenize("read https://example.org/organ-donor now")[1]
        assert token.kind is TokenKind.URL
        assert token.text.startswith("https://")

    def test_url_contents_not_tokenized_as_words(self):
        texts = [t.text for t in tokenize("https://example.org/kidney-donor")]
        assert texts == ["https://example.org/kidney-donor"]

    def test_mixed_tweet(self):
        tokens = tokenize("Be a #kidney donor @UNOS https://x.co 🙏")
        kinds = [t.kind for t in tokens]
        assert TokenKind.HASHTAG in kinds
        assert TokenKind.MENTION in kinds
        assert TokenKind.URL in kinds


class TestWordsHelper:
    def test_words_includes_hashtags(self):
        assert words("organ #donor") == ("organ", "donor")

    def test_words_excludes_mentions_urls_numbers(self):
        assert words("@unos 42 https://x.co organ") == ("organ",)


class TestUrlTrailingPunctuation:
    @pytest.mark.parametrize(
        "text, expected_url",
        [
            ("see (https://example.org/organ), please", "https://example.org/organ"),
            ("link: https://example.org/x.", "https://example.org/x"),
            ("really? https://example.org/a?b=c!?", "https://example.org/a?b=c"),
            ("[https://example.org/list]", "https://example.org/list"),
            ("quote “https://example.org/q”…", "https://example.org/q"),
        ],
    )
    def test_clause_punctuation_trimmed(self, text, expected_url):
        urls = [t.text for t in tokenize(text) if t.kind is TokenKind.URL]
        assert urls == [expected_url]

    def test_interior_punctuation_preserved(self):
        # Parens/commas inside the path are part of the URL; only the
        # trailing run is trimmed.
        token = tokenize("https://en.example.org/wiki/Heart_(organ)x")[0]
        assert token.text == "https://en.example.org/wiki/Heart_(organ)x"

    def test_trimmed_punctuation_does_not_become_tokens(self):
        tokens = tokenize("read (https://example.org/x), now")
        assert [t.kind for t in tokens] == [
            TokenKind.WORD, TokenKind.URL, TokenKind.WORD,
        ]


class TestScanWordsHashtags:
    @pytest.mark.parametrize(
        "text",
        [
            "Be a #kidney donor @UNOS https://x.co 🙏",
            "waited 14 months for a HEART",
            "#OrganDonor saves-lives donor's",
            "",
            "(https://example.org/x), trailing",
        ],
    )
    def test_agrees_with_tokenize(self, text):
        tokens = tokenize(text)
        assert scan_words_hashtags(text) == (
            tuple(t.text for t in tokens if t.kind is TokenKind.WORD),
            tuple(t.text for t in tokens if t.kind is TokenKind.HASHTAG),
        )


class TestSplitCompound:
    def test_hyphen_compound(self):
        assert split_compound("heart-kidney") == ("heart", "kidney")

    def test_apostrophe_compound(self):
        assert split_compound("donor's") == ("donor", "s")

    def test_curly_apostrophe(self):
        assert split_compound("donor’s") == ("donor", "s")

    def test_mixed_separators(self):
        assert split_compound("o'brien-smith") == ("o", "brien", "smith")

    def test_plain_token_returns_shared_empty(self):
        assert split_compound("kidney") is split_compound("liver")
        assert split_compound("kidney") == ()


class TestCaching:
    def test_same_text_same_result(self):
        assert tokenize("kidney donor") is tokenize("kidney donor")

    def test_result_is_immutable_tuple(self):
        assert isinstance(tokenize("kidney donor"), tuple)

    def test_scan_is_cached(self):
        assert scan_words_hashtags("kidney donor") is scan_words_hashtags(
            "kidney donor"
        )
