"""Tests for the Context × Subject query set (Fig. 1)."""

from repro.nlp.keywords import (
    CONTEXT_TERMS,
    SUBJECT_TERMS,
    build_query_set,
    matches_query_set,
    track_phrases,
)
from repro.organs import ALIASES, Organ


class TestQuerySetConstruction:
    def test_cartesian_product_size(self):
        queries = build_query_set()
        assert len(queries) == len(CONTEXT_TERMS) * len(SUBJECT_TERMS)

    def test_every_query_pairs_context_with_subject(self):
        for query in build_query_set():
            assert query.context in CONTEXT_TERMS
            assert query.subject in SUBJECT_TERMS
            assert query.organ is ALIASES[query.subject]

    def test_track_phrase_format(self):
        queries = build_query_set(("donor",), ("kidney",))
        assert queries[0].track_phrase == "kidney donor"

    def test_track_phrases_cover_all_queries(self):
        queries = build_query_set()
        assert len(track_phrases(queries)) == len(queries)

    def test_custom_vocabularies(self):
        queries = build_query_set(("transplant",), ("heart", "liver"))
        assert {q.subject for q in queries} == {"heart", "liver"}
        assert {q.organ for q in queries} == {Organ.HEART, Organ.LIVER}


class TestMatching:
    def test_context_and_subject_matches(self):
        assert matches_query_set("be a kidney donor today")

    def test_context_without_subject_rejected(self):
        assert not matches_query_set("please donate to the food bank")

    def test_subject_without_context_rejected(self):
        assert not matches_query_set("my heart is full tonight")

    def test_neither_rejected(self):
        assert not matches_query_set("beautiful sunset")

    def test_empty_rejected(self):
        assert not matches_query_set("")

    def test_alias_subject_matches(self):
        assert matches_query_set("she needs a renal transplant")

    def test_glued_hashtag_satisfies_both_terms(self):
        assert matches_query_set("support #kidneytransplant week")

    def test_hashtag_subject_with_plain_context(self):
        assert matches_query_set("register as a donor #lung")

    def test_explicit_query_list(self):
        queries = build_query_set(("donor",), ("kidney",))
        assert matches_query_set("kidney donor drive", queries)
        assert not matches_query_set("liver donor drive", queries)

    def test_case_insensitive(self):
        assert matches_query_set("KIDNEY DONOR")

    def test_term_glued_inside_plain_word_rejected(self):
        # Substring matching applies only to hashtag bodies, never to
        # longer plain words that merely contain a vocabulary term.
        assert not matches_query_set("reorganized the kidneys conference")
        assert not matches_query_set("organized heartfelt meetup")

    def test_hyphen_compound_satisfies_subject(self):
        assert matches_query_set("dad needs a heart-kidney transplant")
