"""Tests for the Aho–Corasick automaton and the term vocabulary."""

import pytest

from repro.nlp.automaton import AhoCorasick, TermVocabulary
from repro.nlp.tokenize import present_terms


class TestAhoCorasick:
    def test_empty_automaton_matches_nothing(self):
        automaton = AhoCorasick([])
        assert automaton.find("kidney donor") == ()
        assert automaton.contains_any("kidney donor") is False

    def test_single_term(self):
        automaton = AhoCorasick(["kidney"])
        assert automaton.find("kidneydonor") == ("kidney",)
        assert automaton.find("liver") == ()

    def test_overlapping_terms_both_reported(self):
        # "organdonor" contains both "organ" and "organdonor"; the
        # shorter term ends mid-way through the longer one, so it is
        # only reachable through the failure/output links.
        automaton = AhoCorasick(["organ", "organdonor", "donor"])
        assert automaton.find("organdonor") == (
            "donor", "organ", "organdonor",
        )

    def test_term_found_via_failure_link(self):
        # While walking "kidney"'s trie branch, the automaton passes the
        # end of the embedded term "dne" mid-branch; it is only
        # reportable through the inherited failure-link output.
        automaton = AhoCorasick(["kidney", "dne"])
        assert automaton.find("kidneX") == ("dne",)

    def test_each_term_reported_once(self):
        automaton = AhoCorasick(["na"])
        assert automaton.find("banana") == ("na",)

    def test_results_sorted_regardless_of_insertion_order(self):
        forward = AhoCorasick(["liver", "heart", "kidney"])
        backward = AhoCorasick(["kidney", "heart", "liver"])
        text = "kidneyliverheart"
        assert forward.find(text) == backward.find(text)
        assert forward.find(text) == ("heart", "kidney", "liver")

    def test_terms_property_deduplicated_sorted(self):
        automaton = AhoCorasick(["b", "a", "b", ""])
        assert automaton.terms == ("a", "b")

    def test_contains_any_early_exit_agrees_with_find(self):
        automaton = AhoCorasick(["heart", "lung"])
        for text in ("hearttransplant", "lunges", "pancreas", ""):
            assert automaton.contains_any(text) == bool(automaton.find(text))


class TestTermVocabulary:
    VOCABULARY = ("organ", "organdonor", "donor", "kidney", "be")

    def matches_oracle(self, text: str) -> set[str]:
        return present_terms(text, self.VOCABULARY)

    @pytest.mark.parametrize(
        "text",
        [
            "be an organ donor",
            "#organdonor saves lives",
            "#kidneydonor",          # substring matches inside hashtag
            "organized crime",        # no substring match in plain words
            "#bestself",              # "be" too short for substring match
            "heart-kidney transplant chain",
            "donor's kidney",
            "",
        ],
    )
    def test_agrees_with_present_terms(self, text):
        vocabulary = TermVocabulary(self.VOCABULARY)
        assert set(vocabulary.present(text)) == self.matches_oracle(text)

    def test_result_is_frozenset_and_memoized(self):
        vocabulary = TermVocabulary(self.VOCABULARY)
        first = vocabulary.present("be an organ donor")
        assert isinstance(first, frozenset)
        assert vocabulary.present("be an organ donor") is first

    def test_empty_results_share_one_object(self):
        vocabulary = TermVocabulary(self.VOCABULARY)
        assert vocabulary.present("nothing here") is vocabulary.present("nope")

    def test_cache_eviction_keeps_answers_correct(self, monkeypatch):
        monkeypatch.setattr(TermVocabulary, "_CACHE_LIMIT", 4)
        vocabulary = TermVocabulary(self.VOCABULARY)
        texts = [f"organ text {i}" for i in range(10)]
        for text in texts:
            assert vocabulary.present(text) == frozenset({"organ"})
        assert len(vocabulary._cache) <= 4
        # Evicted entries recompute to the same answer.
        assert vocabulary.present(texts[0]) == frozenset({"organ"})

    def test_terms_property(self):
        vocabulary = TermVocabulary(("a", "", "b"))
        assert vocabulary.terms == frozenset({"a", "b"})
