"""Tests for organ-mention extraction."""

from collections import Counter

from repro.nlp.matcher import OrganMatcher
from repro.organs import Organ


class TestWordMatching:
    def setup_method(self):
        self.matcher = OrganMatcher()

    def test_single_mention(self):
        assert self.matcher.mentions("be a kidney donor") == Counter(
            {Organ.KIDNEY: 1}
        )

    def test_plural_alias(self):
        assert self.matcher.mentions("both kidneys failed") == Counter(
            {Organ.KIDNEY: 1}
        )

    def test_medical_adjective(self):
        assert self.matcher.mentions("renal transplant unit") == Counter(
            {Organ.KIDNEY: 1}
        )

    def test_repeated_mentions_counted(self):
        counts = self.matcher.mentions("kidney kidney kidney")
        assert counts[Organ.KIDNEY] == 3

    def test_multiple_organs(self):
        counts = self.matcher.mentions("heart and lung transplant")
        assert counts == Counter({Organ.HEART: 1, Organ.LUNG: 1})

    def test_no_mentions(self):
        assert self.matcher.mentions("please donate blood") == Counter()

    def test_substring_of_word_not_matched(self):
        # "sweetheart" must not count as heart: WORD tokens match exactly.
        assert self.matcher.mentions("you are a sweetheart") == Counter()

    def test_hyphenated_compound_counts_both(self):
        counts = self.matcher.mentions("combined kidney-liver transplant")
        assert counts == Counter({Organ.KIDNEY: 1, Organ.LIVER: 1})


class TestHashtagMatching:
    def setup_method(self):
        self.matcher = OrganMatcher()

    def test_exact_hashtag(self):
        assert self.matcher.mentions("#kidney") == Counter({Organ.KIDNEY: 1})

    def test_glued_hashtag(self):
        assert self.matcher.mentions("#hearttransplant") == Counter(
            {Organ.HEART: 1}
        )

    def test_glued_hashtag_two_organs(self):
        counts = self.matcher.mentions("#heartandlungtransplant")
        assert counts == Counter({Organ.HEART: 1, Organ.LUNG: 1})

    def test_same_organ_not_double_counted_within_hashtag(self):
        # "kidneys" and "kidney" both match inside the body → one organ.
        assert self.matcher.mentions("#kidneysmatter") == Counter(
            {Organ.KIDNEY: 1}
        )


class TestNonMatchingTokens:
    def setup_method(self):
        self.matcher = OrganMatcher()

    def test_mentions_handles_ignore_organ_words(self):
        # @heart is a user mention, not an organ mention.
        assert self.matcher.mentions("@heart hello") == Counter()

    def test_urls_ignored(self):
        assert self.matcher.mentions("https://kidney.org/donor") == Counter()


class TestDistinctOrgans:
    def test_distinct_set(self):
        matcher = OrganMatcher()
        organs = matcher.distinct_organs("kidney kidney liver donor")
        assert organs == frozenset({Organ.KIDNEY, Organ.LIVER})


class TestCustomAliases:
    def test_custom_alias_table(self):
        matcher = OrganMatcher(aliases={"ticker": Organ.HEART})
        assert matcher.mentions("my ticker needs help") == Counter(
            {Organ.HEART: 1}
        )
        assert matcher.mentions("kidney donor") == Counter()
