"""Tests for descriptive statistics."""

import numpy as np
import pytest

from repro.stats.descriptive import log_binned_histogram, summarize


class TestSummarize:
    def test_basic(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.n == 5
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_quartiles(self):
        summary = summarize(list(range(1, 101)))
        assert summary.q1 == pytest.approx(25.75)
        assert summary.q3 == pytest.approx(75.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_single_value(self):
        summary = summarize([7])
        assert summary.minimum == summary.maximum == summary.mean == 7.0


class TestLogBinnedHistogram:
    def test_frequencies_cover_all_positive_values(self):
        counts = [1, 1, 2, 3, 5, 8, 13, 200]
        bins = log_binned_histogram(counts)
        assert sum(freq for __, __, freq in bins) == len(counts)

    def test_zeros_excluded(self):
        bins = log_binned_histogram([0, 0, 1, 2])
        assert sum(freq for __, __, freq in bins) == 2

    def test_empty_when_no_positive(self):
        assert log_binned_histogram([0, 0]) == []

    def test_edges_geometric(self):
        bins = log_binned_histogram([1, 2, 4, 8, 16], base=2.0)
        lows = [low for low, __, __ in bins]
        assert lows[:4] == [1, 2, 4, 8]

    def test_bins_disjoint_and_ordered(self):
        bins = log_binned_histogram(np.arange(1, 500))
        for (l1, h1, _), (l2, h2, _) in zip(bins, bins[1:]):
            assert h1 <= l2 or l2 == h1

    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            log_binned_histogram([1, 2], base=1.0)


class TestCountValidation:
    """Regression: a fractional value in (0, 1) fell below the first bin
    edge (1) and vanished, silently breaking the invariant that bin
    frequencies sum to the number of positive values."""

    def test_fraction_below_one_rejected(self):
        with pytest.raises(ValueError, match="integer counts"):
            log_binned_histogram([0.5, 2])

    def test_any_fractional_value_rejected(self):
        with pytest.raises(ValueError, match="integer counts"):
            log_binned_histogram([1, 2, 3.5])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            log_binned_histogram([1, float("nan")])

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            log_binned_histogram([1, float("inf")])

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            log_binned_histogram([1, -2])

    def test_integer_valued_floats_accepted(self):
        counts = [1.0, 3.0, 200.0]
        bins = log_binned_histogram(counts)
        assert sum(freq for __, __, freq in bins) == len(counts)

    def test_sum_invariant_random_counts(self):
        rng = np.random.default_rng(6)
        counts = rng.integers(0, 1000, size=500)
        bins = log_binned_histogram(counts)
        positive = int(np.count_nonzero(counts > 0))
        assert sum(freq for __, __, freq in bins) == positive
