"""Tests for correlation estimators, cross-checked against SciPy."""

import math

import numpy as np
import pytest
import scipy.stats

from repro.stats.correlation import pearson, spearman


class TestSpearman:
    def test_perfect_monotone(self):
        result = spearman([1, 2, 3, 4], [10, 20, 30, 40])
        assert result.r == pytest.approx(1.0)

    def test_perfect_inverse(self):
        result = spearman([1, 2, 3, 4], [4, 3, 2, 1])
        assert result.r == pytest.approx(-1.0)

    def test_monotone_nonlinear_still_perfect(self):
        x = [1, 2, 3, 4, 5]
        y = [math.exp(v) for v in x]
        assert spearman(x, y).r == pytest.approx(1.0)

    def test_matches_scipy_random(self):
        rng = np.random.default_rng(3)
        for __ in range(20):
            x = rng.normal(size=25)
            y = 0.5 * x + rng.normal(size=25)
            ours = spearman(x, y)
            theirs = scipy.stats.spearmanr(x, y)
            assert ours.r == pytest.approx(theirs.statistic, abs=1e-12)
            assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(4)
        x = rng.integers(0, 4, size=40).astype(float)
        y = rng.integers(0, 4, size=40).astype(float)
        ours = spearman(x, y)
        theirs = scipy.stats.spearmanr(x, y)
        assert ours.r == pytest.approx(theirs.statistic, abs=1e-12)

    def test_paper_scenario_rank_agreement(self):
        """The paper's Fig. 2a orders: heart inversion gives r ≈ .83."""
        twitter = [6, 5, 4, 3, 2, 1]     # heart,kidney,liver,lung,panc,int
        transplants = [4, 6, 5, 3, 2, 1]  # heart 3rd, kidney 1st, liver 2nd
        result = spearman(twitter, transplants)
        assert result.r == pytest.approx(0.829, abs=0.01)
        assert result.significant


class TestPearson:
    def test_matches_scipy(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=30)
        y = x + rng.normal(size=30)
        ours = pearson(x, y)
        theirs = scipy.stats.pearsonr(x, y)
        assert ours.r == pytest.approx(theirs.statistic, abs=1e-12)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_constant_input_nan(self):
        result = pearson([1, 1, 1], [2, 3, 4])
        assert math.isnan(result.r)
        assert math.isnan(result.p_value)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_tiny_sample_nan_p(self):
        result = pearson([1, 2], [2, 1])
        assert math.isnan(result.p_value)

    def test_significance_property(self):
        x = list(range(20))
        y = [2 * v + 1 for v in x]
        assert pearson(x, y).significant


class TestNonFiniteInput:
    """Regression: NaN used to propagate to ``r = nan`` silently, and
    an infinity overflowed the centered dot products.  Both now raise,
    matching the stance of SciPy's ``nan_policy="raise"``."""

    def test_pearson_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            pearson([1.0, float("nan"), 3.0], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="finite"):
            pearson([1.0, 2.0, 3.0], [1.0, float("nan"), 3.0])

    def test_pearson_inf_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            pearson([1.0, float("inf"), 3.0], [1.0, 2.0, 3.0])

    def test_spearman_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            spearman([1.0, float("nan"), 3.0], [1.0, 2.0, 3.0])

    def test_scipy_raise_policy_agrees(self):
        with pytest.raises(ValueError):
            scipy.stats.spearmanr(
                [1.0, float("nan"), 3.0], [1.0, 2.0, 3.0],
                nan_policy="raise",
            )

    def test_scipy_default_shows_the_silent_failure(self):
        """scipy.stats.pearsonr's propagate policy yields nan without
        complaint — the behaviour this sweep removed from our code."""
        result = scipy.stats.pearsonr(
            np.array([1.0, np.nan, 3.0]), np.array([1.0, 2.0, 3.0])
        )
        assert math.isnan(result.statistic)
