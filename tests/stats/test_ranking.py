"""Tests for the rank transform."""

import numpy as np
import pytest
import scipy.stats

from repro.stats.ranking import rankdata


class TestRankdata:
    def test_simple(self):
        assert rankdata([30, 10, 20]).tolist() == [3.0, 1.0, 2.0]

    def test_average_ties(self):
        assert rankdata([10, 20, 20, 30]).tolist() == [1.0, 2.5, 2.5, 4.0]

    def test_all_tied(self):
        assert rankdata([5, 5, 5]).tolist() == [2.0, 2.0, 2.0]

    def test_single_element(self):
        assert rankdata([42]).tolist() == [1.0]

    def test_matches_scipy_on_random_data(self):
        rng = np.random.default_rng(0)
        for __ in range(20):
            data = rng.integers(0, 10, size=30).astype(float)
            np.testing.assert_allclose(
                rankdata(data), scipy.stats.rankdata(data)
            )

    def test_matches_scipy_on_floats(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=100)
        np.testing.assert_allclose(rankdata(data), scipy.stats.rankdata(data))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            rankdata(np.zeros((2, 2)))

    def test_ranks_sum_invariant(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 5, size=50).astype(float)
        n = data.size
        assert rankdata(data).sum() == pytest.approx(n * (n + 1) / 2)


class TestNonFiniteInput:
    """Regression: NaN input used to get arbitrary top ranks silently.

    ``argsort`` sorts every NaN to the end, so each one received a
    distinct maximal rank and the tie-averaging scan (whose ``!=``
    comparison is always True for NaN) never grouped them — downstream
    Spearman r looked plausible but was garbage.  SciPy's ``rankdata``
    shows exactly the buggy behaviour we now refuse, which is why
    ``spearmanr(nan_policy="raise")`` exists; we take the raise stance
    unconditionally.
    """

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            rankdata([1.0, float("nan"), 3.0])

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            rankdata([1.0, float("inf"), 3.0])
        with pytest.raises(ValueError, match="finite"):
            rankdata([float("-inf"), 1.0])

    def test_scipy_default_is_silent(self):
        """Document the failure mode we guard against: SciPy's default
        never raises — it quietly returns unusable ranks (historically a
        top rank for each NaN; with ``nan_policy="propagate"`` an
        all-NaN vector) that a downstream Spearman happily consumes."""
        ranks = scipy.stats.rankdata([1.0, float("nan"), 3.0])
        assert not np.all(np.isfinite(ranks))

    def test_scipy_raise_policy_agrees(self):
        with pytest.raises(ValueError):
            scipy.stats.spearmanr(
                [1.0, float("nan"), 3.0], [1.0, 2.0, 3.0],
                nan_policy="raise",
            )
