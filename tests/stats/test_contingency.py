"""Tests for the chi-square independence test."""

import numpy as np
import pytest
import scipy.stats

from repro.stats.contingency import chi_square_independence, state_organ_table


class TestChiSquare:
    def test_matches_scipy_on_random_tables(self):
        rng = np.random.default_rng(0)
        for __ in range(20):
            table = rng.integers(1, 50, size=(4, 3)).astype(float)
            ours = chi_square_independence(table)
            theirs = scipy.stats.chi2_contingency(table, correction=False)
            assert ours.statistic == pytest.approx(theirs.statistic)
            assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)
            assert ours.dof == theirs.dof

    def test_independent_table_not_significant(self):
        # Perfectly proportional rows → statistic 0.
        table = np.outer([10, 20, 30], [1, 2, 3]).astype(float)
        result = chi_square_independence(table)
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)
        assert result.cramers_v == pytest.approx(0.0)

    def test_dependent_table_significant(self):
        table = np.array([[90.0, 10.0], [10.0, 90.0]])
        result = chi_square_independence(table)
        assert result.significant
        assert result.cramers_v > 0.5

    def test_cramers_v_bounded(self):
        rng = np.random.default_rng(1)
        for __ in range(10):
            table = rng.integers(1, 100, size=(3, 4)).astype(float)
            assert 0.0 <= chi_square_independence(table).cramers_v <= 1.0

    def test_zero_marginals_dropped(self):
        table = np.array([[10.0, 20.0, 0.0], [30.0, 40.0, 0.0],
                          [0.0, 0.0, 0.0]])
        result = chi_square_independence(table)
        assert result.dof == 1  # effectively 2×2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chi_square_independence(np.array([[1.0, -1.0], [1.0, 1.0]]))

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            chi_square_independence(np.array([[1.0, 2.0]]))


class TestStateOrganTable:
    def test_table_shape(self, corpus):
        table, states = state_organ_table(corpus)
        assert table.shape == (len(states), 6)
        assert table.sum() > 0

    def test_planted_geography_rejects_independence(self, midsize_corpus):
        """The global test agrees with the per-state RR scan: state and
        organ attention are not independent."""
        table, __ = state_organ_table(midsize_corpus)
        result = chi_square_independence(table)
        assert result.significant
        assert result.cramers_v > 0.02

    def test_null_world_independent(self):
        """With nothing planted, the global test should usually accept
        independence (α-level false positives aside)."""
        from repro.pipeline.runner import CollectionPipeline
        from repro.synth.scenarios import null_uniform_scenario
        from repro.synth.world import SyntheticWorld

        world = SyntheticWorld(null_uniform_scenario(n_users=20000, seed=13))
        corpus, __ = CollectionPipeline().run(world.firehose())
        table, __ = state_organ_table(corpus)
        result = chi_square_independence(table)
        assert result.p_value > 0.01
