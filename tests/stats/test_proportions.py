"""Tests for prevalence and relative risk."""

import math

import pytest

from repro.stats.proportions import prevalence, relative_risk


class TestPrevalence:
    def test_basic(self):
        assert prevalence(25, 100) == 0.25

    def test_zero_events(self):
        assert prevalence(0, 10) == 0.0

    def test_all_events(self):
        assert prevalence(10, 10) == 1.0

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            prevalence(0, 0)

    def test_events_exceeding_total_rejected(self):
        with pytest.raises(ValueError):
            prevalence(11, 10)

    def test_negative_events_rejected(self):
        with pytest.raises(ValueError):
            prevalence(-1, 10)


class TestRelativeRisk:
    def test_point_estimate(self):
        result = relative_risk(30, 100, 10, 100)
        assert result.rr == pytest.approx(3.0)
        assert result.log_rr == pytest.approx(math.log(3.0))

    def test_null_effect(self):
        result = relative_risk(10, 100, 100, 1000)
        assert result.rr == pytest.approx(1.0)
        assert not result.significant_excess
        assert not result.significant_deficit

    def test_standard_error_formula(self):
        result = relative_risk(30, 100, 10, 100)
        expected = math.sqrt(1 / 30 - 1 / 100 + 1 / 10 - 1 / 100)
        assert result.se_log_rr == pytest.approx(expected)

    def test_ci_contains_point_estimate(self):
        result = relative_risk(40, 200, 30, 300)
        assert result.ci_low < result.rr < result.ci_high

    def test_significant_excess_with_strong_signal(self):
        result = relative_risk(80, 100, 100, 1000)
        assert result.significant_excess

    def test_significant_deficit(self):
        result = relative_risk(2, 100, 300, 1000)
        assert result.significant_deficit
        assert not result.significant_excess

    def test_paper_criterion_equivalence(self):
        """CI lower limit > 1 ⟺ log(RR) − z·σ > 0 (the paper's Eq. 4 test)."""
        result = relative_risk(50, 120, 200, 900, alpha=0.05)
        z = 1.959963984540054
        manual = result.log_rr - z * result.se_log_rr > 0
        assert result.significant_excess == manual

    def test_alpha_widens_interval(self):
        narrow = relative_risk(30, 100, 20, 100, alpha=0.10)
        wide = relative_risk(30, 100, 20, 100, alpha=0.01)
        assert wide.ci_low < narrow.ci_low
        assert wide.ci_high > narrow.ci_high

    def test_zero_exposed_events(self):
        result = relative_risk(0, 50, 10, 100)
        assert result.rr == 0.0
        assert not result.significant_excess

    def test_zero_control_events(self):
        result = relative_risk(10, 50, 0, 100)
        assert math.isinf(result.rr)
        assert not result.significant_excess  # unbounded CI is never sure

    def test_both_zero(self):
        result = relative_risk(0, 50, 0, 100)
        assert math.isnan(result.rr)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            relative_risk(1, 10, 1, 10, alpha=0.0)

    def test_scale_invariance_of_point_estimate(self):
        """RR depends on prevalences, not absolute sample sizes."""
        small = relative_risk(3, 10, 10, 100)
        large = relative_risk(300, 1000, 1000, 10000)
        assert small.rr == pytest.approx(large.rr)

    def test_larger_samples_narrow_ci(self):
        small = relative_risk(3, 10, 10, 100)
        large = relative_risk(300, 1000, 1000, 10000)
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)
