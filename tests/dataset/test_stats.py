"""Tests for dataset statistics (Table I / Fig. 2)."""

from datetime import datetime, timezone

import pytest

from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.dataset.stats import (
    compute_stats,
    organ_mention_histogram,
    users_per_organ,
)
from repro.geo.geocoder import GeoMatch
from repro.organs import ORGANS, Organ
from repro.twitter.models import Tweet, UserProfile


def record(user_id, organs, tweet_id=0, day=1):
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=tweet_id,
            user=UserProfile(user_id=user_id, screen_name=f"u{user_id}"),
            text="t",
            created_at=datetime(2015, 6, day, tzinfo=timezone.utc),
        ),
        location=GeoMatch("US", "KS", 0.95, "test"),
        mentions=organs,
    )


@pytest.fixture()
def toy_corpus():
    return TweetCorpus([
        record(1, {Organ.KIDNEY: 1}, 1, day=1),
        record(1, {Organ.HEART: 1}, 2, day=2),
        record(2, {Organ.KIDNEY: 1, Organ.LIVER: 1}, 3, day=5),
        record(3, {Organ.HEART: 2}, 4, day=10),
    ])


class TestComputeStats:
    def test_counts(self, toy_corpus):
        stats = compute_stats(toy_corpus)
        assert stats.tweets_collected == 4
        assert stats.n_users == 3

    def test_days_inclusive(self, toy_corpus):
        assert compute_stats(toy_corpus).days == 10

    def test_avg_tweets_per_user(self, toy_corpus):
        assert compute_stats(toy_corpus).avg_tweets_per_user == pytest.approx(4 / 3)

    def test_organs_per_tweet_distinct(self, toy_corpus):
        # tweets have 1, 1, 2, 1 distinct organs → 1.25
        assert compute_stats(toy_corpus).organs_per_tweet == pytest.approx(1.25)

    def test_organs_per_user_distinct(self, toy_corpus):
        # users have 2, 2, 1 distinct organs → 5/3
        assert compute_stats(toy_corpus).organs_per_user == pytest.approx(5 / 3)

    def test_user_aggregation_exceeds_tweet_aggregation(self, toy_corpus):
        """Fig. 2(b)'s message: organs are more likely mentioned when
        aggregated by user than per tweet."""
        stats = compute_stats(toy_corpus)
        assert stats.organs_per_user > stats.organs_per_tweet

    def test_as_rows_has_table1_labels(self, toy_corpus):
        labels = [label for label, __ in compute_stats(toy_corpus).as_rows()]
        assert "Tweets collected" in labels
        assert "Organs mentioned / User" in labels


class TestUsersPerOrgan:
    def test_counts_users_not_tweets(self, toy_corpus):
        counts = users_per_organ(toy_corpus)
        assert counts[Organ.KIDNEY] == 2  # users 1 and 2
        assert counts[Organ.HEART] == 2   # users 1 and 3
        assert counts[Organ.LIVER] == 1

    def test_all_organs_present_in_result(self, toy_corpus):
        assert set(users_per_organ(toy_corpus)) == set(ORGANS)

    def test_unmentioned_organ_zero(self, toy_corpus):
        assert users_per_organ(toy_corpus)[Organ.INTESTINE] == 0


class TestMentionHistogram:
    def test_histogram_shape(self, toy_corpus):
        histogram = organ_mention_histogram(toy_corpus)
        assert histogram[1] == (3, 1)  # 3 single-organ tweets; user 3
        assert histogram[2] == (1, 2)  # 1 dual tweet; users 1 and 2

    def test_totals_match_corpus(self, toy_corpus):
        histogram = organ_mention_histogram(toy_corpus)
        assert sum(t for t, __ in histogram.values()) == len(toy_corpus)
        assert sum(u for __, u in histogram.values()) == toy_corpus.n_users

    def test_tweets_exceed_users_only_for_single_mentions(self, corpus):
        """The paper's Fig. 2(b) observation, on the synthetic corpus."""
        histogram = organ_mention_histogram(corpus)
        tweets_1, users_1 = histogram[1]
        assert tweets_1 > users_1
        for k in range(2, 7):
            tweets_k, users_k = histogram[k]
            assert tweets_k <= users_k, f"k={k}"
