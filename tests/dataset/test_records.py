"""Tests for collected-tweet records."""

import pytest

from repro.dataset.records import CollectedTweet
from repro.errors import SerializationError
from repro.geo.geocoder import GeoMatch
from repro.organs import Organ
from repro.twitter.models import Tweet, UserProfile


def record(mentions=None, state="KS") -> CollectedTweet:
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=1,
            user=UserProfile(user_id=9, screen_name="u", location="Wichita, KS"),
            text="kidney donor",
        ),
        location=GeoMatch("US", state, 0.95, "comma-abbrev"),
        mentions=mentions or {Organ.KIDNEY: 1},
    )


class TestAccessors:
    def test_user_id(self):
        assert record().user_id == 9

    def test_state(self):
        assert record().state == "KS"

    def test_distinct_organs_excludes_zero_counts(self):
        rec = record(mentions={Organ.KIDNEY: 2, Organ.HEART: 0})
        assert rec.distinct_organs == frozenset({Organ.KIDNEY})


class TestSerialization:
    def test_roundtrip(self):
        rec = record(mentions={Organ.KIDNEY: 2, Organ.LIVER: 1})
        assert CollectedTweet.from_dict(rec.to_dict()) == rec

    def test_mentions_serialized_by_name(self):
        data = record().to_dict()
        assert data["mentions"] == {"kidney": 1}

    def test_malformed_mentions_raise(self):
        data = record().to_dict()
        data["mentions"] = {"spleen": 1}
        with pytest.raises((SerializationError, KeyError)):
            CollectedTweet.from_dict(data)

    def test_missing_location_raises(self):
        data = record().to_dict()
        del data["location"]
        with pytest.raises(SerializationError):
            CollectedTweet.from_dict(data)

    def test_nested_tweet_error_propagates(self):
        data = record().to_dict()
        del data["tweet"]["text"]
        with pytest.raises(SerializationError):
            CollectedTweet.from_dict(data)
