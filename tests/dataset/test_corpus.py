"""Tests for the tweet corpus container."""

from datetime import datetime, timezone

import pytest

from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.errors import DatasetError
from repro.geo.geocoder import GeoMatch
from repro.organs import Organ
from repro.twitter.models import Tweet, UserProfile


def record(user_id: int, state: str, organs: dict, tweet_id: int = 0,
           when: datetime | None = None) -> CollectedTweet:
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=tweet_id,
            user=UserProfile(user_id=user_id, screen_name=f"u{user_id}"),
            text="kidney donor",
            created_at=when or datetime(2015, 6, 1, tzinfo=timezone.utc),
        ),
        location=GeoMatch("US", state, 0.95, "test"),
        mentions=organs,
    )


@pytest.fixture()
def corpus() -> TweetCorpus:
    return TweetCorpus([
        record(1, "KS", {Organ.KIDNEY: 2}, 1),
        record(1, "KS", {Organ.HEART: 1}, 2),
        record(2, "MA", {Organ.LUNG: 1}, 3),
        record(3, "KS", {Organ.KIDNEY: 1, Organ.HEART: 1}, 4),
    ])


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            TweetCorpus([])

    def test_len_and_iter(self, corpus):
        assert len(corpus) == 4
        assert len(list(corpus)) == 4

    def test_n_users(self, corpus):
        assert corpus.n_users == 3


class TestUserSlices:
    def test_user_ids_sorted(self, corpus):
        assert corpus.user_ids() == [1, 2, 3]

    def test_slice_aggregates_mentions(self, corpus):
        user = corpus.user_slice(1)
        assert user.mention_counts[Organ.KIDNEY] == 2
        assert user.mention_counts[Organ.HEART] == 1
        assert user.n_tweets == 2

    def test_slice_distinct_organs(self, corpus):
        assert corpus.user_slice(1).distinct_organs == {
            Organ.KIDNEY, Organ.HEART,
        }

    def test_unknown_user_raises(self, corpus):
        with pytest.raises(DatasetError):
            corpus.user_slice(99)

    def test_slices_align_with_ids(self, corpus):
        assert [u.user_id for u in corpus.user_slices()] == [1, 2, 3]

    def test_modal_state(self):
        corpus = TweetCorpus([
            record(1, "KS", {Organ.KIDNEY: 1}, 1),
            record(1, "KS", {Organ.KIDNEY: 1}, 2),
            record(1, "MO", {Organ.KIDNEY: 1}, 3),
        ])
        assert corpus.user_slice(1).state == "KS"


class TestStatesAndFiltering:
    def test_states_sorted_distinct(self, corpus):
        assert corpus.states() == ["KS", "MA"]

    def test_filter(self, corpus):
        kansas = corpus.filter(lambda r: r.state == "KS")
        assert len(kansas) == 3
        assert kansas.states() == ["KS"]

    def test_filter_nothing_matches_raises(self, corpus):
        with pytest.raises(DatasetError):
            corpus.filter(lambda r: False)

    def test_in_window(self):
        early = datetime(2015, 5, 1, tzinfo=timezone.utc)
        late = datetime(2015, 7, 1, tzinfo=timezone.utc)
        corpus = TweetCorpus([
            record(1, "KS", {Organ.KIDNEY: 1}, 1, early),
            record(2, "KS", {Organ.KIDNEY: 1}, 2, late),
        ])
        window = corpus.in_window(
            datetime(2015, 4, 1, tzinfo=timezone.utc),
            datetime(2015, 6, 1, tzinfo=timezone.utc),
        )
        assert [r.tweet.tweet_id for r in window] == [1]

    def test_time_span(self, corpus):
        start, end = corpus.time_span()
        assert start <= end
