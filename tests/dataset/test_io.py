"""Tests for JSONL persistence."""

import pytest

from repro.dataset.io import read_jsonl, write_jsonl
from repro.dataset.records import CollectedTweet
from repro.errors import SerializationError
from repro.geo.geocoder import GeoMatch
from repro.organs import Organ
from repro.twitter.models import Tweet, UserProfile


def records(n: int) -> list[CollectedTweet]:
    return [
        CollectedTweet(
            tweet=Tweet(
                tweet_id=i,
                user=UserProfile(user_id=i % 3, screen_name=f"u{i % 3}",
                                 location="Wichita, KS"),
                text=f"kidney donor tweet {i}",
            ),
            location=GeoMatch("US", "KS", 0.95, "comma-abbrev"),
            mentions={Organ.KIDNEY: 1 + i % 2},
        )
        for i in range(n)
    ]


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        original = records(25)
        assert write_jsonl(original, path) == 25
        assert list(read_jsonl(path)) == original

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_jsonl([], path)
        assert list(read_jsonl(path)) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        write_jsonl(records(2), path)
        content = path.read_text()
        path.write_text(content.replace("\n", "\n\n"))
        assert len(list(read_jsonl(path))) == 2

    def test_unicode_text_preserved(self, tmp_path):
        rec = records(1)[0]
        tweet = Tweet(
            tweet_id=0,
            user=rec.tweet.user,
            text="kidney donor 🙏 ❤",
            created_at=rec.tweet.created_at,
        )
        rec = CollectedTweet(tweet=tweet, location=rec.location,
                             mentions=rec.mentions)
        path = tmp_path / "emoji.jsonl"
        write_jsonl([rec], path)
        assert next(iter(read_jsonl(path))).tweet.text == "kidney donor 🙏 ❤"


class TestMalformedFiles:
    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        write_jsonl(records(1), path)
        with open(path, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(SerializationError, match=":2"):
            list(read_jsonl(path))

    def test_valid_json_wrong_schema_reports_line(self, tmp_path):
        path = tmp_path / "schema.jsonl"
        path.write_text('{"foo": 1}\n')
        with pytest.raises(SerializationError, match=":1"):
            list(read_jsonl(path))

    def test_reading_is_lazy(self, tmp_path):
        path = tmp_path / "lazy.jsonl"
        write_jsonl(records(3), path)
        with open(path, "a") as handle:
            handle.write("garbage\n")
        reader = read_jsonl(path)
        assert next(reader).tweet.tweet_id == 0  # no error until reached


class TestTornTail:
    def test_tolerant_skips_torn_final_line_with_warning(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        write_jsonl(records(3), path)
        with open(path, "a") as handle:
            handle.write('{"tweet": {"tweet_id": 3, "us')  # no newline
        with pytest.warns(UserWarning, match="torn trailing record"):
            loaded = list(read_jsonl(path, tolerate_torn_tail=True))
        assert [r.tweet.tweet_id for r in loaded] == [0, 1, 2]

    def test_strict_default_still_raises_on_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        write_jsonl(records(2), path)
        with open(path, "a") as handle:
            handle.write('{"tweet":')
        with pytest.raises(SerializationError, match=":3"):
            list(read_jsonl(path))

    def test_tolerant_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        write_jsonl(records(3), path)
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = "{not json\n"
        path.write_text("".join(lines))
        with pytest.raises(SerializationError, match=":2"):
            list(read_jsonl(path, tolerate_torn_tail=True))

    def test_tolerant_whitespace_after_torn_line_ok(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        write_jsonl(records(1), path)
        with open(path, "a") as handle:
            handle.write('{"tweet\n   \n')
        with pytest.warns(UserWarning, match="torn"):
            assert len(list(read_jsonl(path, tolerate_torn_tail=True))) == 1


class TestAtomicWrites:
    def test_crash_mid_write_preserves_old_corpus(self, tmp_path):
        from repro.faults.storage import SimulatedCrash, StorageFaultPlan
        from repro.storage.fs import FaultyFS

        path = tmp_path / "corpus.jsonl"
        write_jsonl(records(5), path)
        old_bytes = path.read_bytes()
        # Power fails on the 3rd data write of the replacement corpus:
        # the half-written temp file dies, the old corpus survives.
        fs = FaultyFS(StorageFaultPlan(crash_at=5))
        with pytest.raises(SimulatedCrash):
            write_jsonl(records(50), path, fs=fs)
        assert path.read_bytes() == old_bytes
        assert list(read_jsonl(path)) == records(5)

    def test_enospc_surfaces_and_preserves_old_corpus(self, tmp_path):
        from repro.errors import StorageError
        from repro.faults.storage import StorageFaultPlan
        from repro.storage.fs import FaultyFS

        path = tmp_path / "corpus.jsonl"
        write_jsonl(records(3), path)
        old_bytes = path.read_bytes()
        fs = FaultyFS(StorageFaultPlan(enospc_at=1))
        with pytest.raises(StorageError, match="no space left"):
            write_jsonl(records(30), path, fs=fs)
        assert path.read_bytes() == old_bytes

    def test_write_leaves_integrity_sidecar(self, tmp_path):
        from repro.storage.manifest import load_manifest, verify_file

        path = tmp_path / "corpus.jsonl"
        write_jsonl(records(4), path)
        manifest = load_manifest(path)
        assert manifest is not None
        assert manifest.records == 4
        assert verify_file(path).ok

    def test_manifest_opt_out(self, tmp_path):
        from repro.storage.manifest import load_manifest

        path = tmp_path / "corpus.jsonl"
        write_jsonl(records(2), path, manifest=False)
        assert load_manifest(path) is None

    def test_no_temp_file_after_clean_write(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        write_jsonl(records(2), path)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "corpus.jsonl", "corpus.jsonl.manifest.json",
        ]


class TestTweetsTornTail:
    def make_firehose(self, tmp_path, n: int):
        from repro.dataset.io import write_tweets_jsonl

        path = tmp_path / "firehose.jsonl"
        tweets = [record.tweet for record in records(n)]
        write_tweets_jsonl(tweets, path)
        return path, tweets

    def test_tolerant_skips_torn_final_line(self, tmp_path):
        from repro.dataset.io import read_tweets_jsonl

        path, tweets = self.make_firehose(tmp_path, 3)
        with open(path, "a") as handle:
            handle.write('{"tweet_id": 3, "us')  # no newline
        with pytest.warns(UserWarning, match="torn trailing record"):
            loaded = list(read_tweets_jsonl(path, tolerate_torn_tail=True))
        assert loaded == tweets

    def test_strict_default_raises(self, tmp_path):
        from repro.dataset.io import read_tweets_jsonl

        path, __ = self.make_firehose(tmp_path, 2)
        with open(path, "a") as handle:
            handle.write('{"tweet_id":')
        with pytest.raises(SerializationError, match=":3"):
            list(read_tweets_jsonl(path))

    def test_tolerant_mid_file_corruption_still_raises(self, tmp_path):
        from repro.dataset.io import read_tweets_jsonl

        path, __ = self.make_firehose(tmp_path, 3)
        lines = path.read_text().splitlines(keepends=True)
        lines[0] = "{broken\n"
        path.write_text("".join(lines))
        with pytest.raises(SerializationError, match=":1"):
            list(read_tweets_jsonl(path, tolerate_torn_tail=True))

    def test_torn_tail_probe_reads_bounded_chunks(self, tmp_path):
        """A torn line followed by a huge whitespace run must not be
        slurped in one read() call."""
        from repro.dataset import io as io_module
        from repro.dataset.io import read_tweets_jsonl

        path, tweets = self.make_firehose(tmp_path, 1)
        with open(path, "a") as handle:
            handle.write('{"torn')
            handle.write(" " * (io_module._TAIL_PROBE_BYTES * 3))
        with pytest.warns(UserWarning, match="torn"):
            assert list(
                read_tweets_jsonl(path, tolerate_torn_tail=True)
            ) == tweets
