"""Tests for temporal analysis."""

from datetime import date, datetime, timedelta, timezone

import numpy as np
import pytest

from repro.analysis.timeseries import daily_series, detect_bursts
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.geo.geocoder import GeoMatch
from repro.organs import Organ
from repro.twitter.models import Tweet, UserProfile


def record(day_offset, organ=Organ.HEART, tweet_id=0, user_id=1):
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=tweet_id,
            user=UserProfile(user_id=user_id, screen_name=f"u{user_id}"),
            text="t",
            created_at=datetime(2015, 6, 1, tzinfo=timezone.utc)
            + timedelta(days=day_offset),
        ),
        location=GeoMatch("US", "KS", 0.95, "test"),
        mentions={organ: 1},
    )


class TestDailySeries:
    def test_counts_per_day(self):
        corpus = TweetCorpus([
            record(0, tweet_id=1),
            record(0, tweet_id=2),
            record(2, tweet_id=3),
        ])
        series = daily_series(corpus)
        assert series.start == date(2015, 6, 1)
        assert series.counts.tolist() == [2, 0, 1]

    def test_gap_free(self):
        corpus = TweetCorpus([record(0, tweet_id=1), record(9, tweet_id=2)])
        assert daily_series(corpus).n_days == 10

    def test_per_organ_filter(self):
        corpus = TweetCorpus([
            record(0, Organ.HEART, 1),
            record(0, Organ.KIDNEY, 2),
            record(1, Organ.KIDNEY, 3),
        ])
        series = daily_series(corpus, organ=Organ.KIDNEY)
        assert series.counts.tolist() == [1, 1]

    def test_no_matching_tweets_raises(self):
        corpus = TweetCorpus([record(0, Organ.HEART, 1)])
        with pytest.raises(ValueError):
            daily_series(corpus, organ=Organ.INTESTINE)

    def test_mean_per_day(self):
        corpus = TweetCorpus([record(0, tweet_id=1), record(1, tweet_id=2)])
        assert daily_series(corpus).mean_per_day == 1.0

    def test_day_accessor(self):
        corpus = TweetCorpus([record(0, tweet_id=1), record(3, tweet_id=2)])
        assert daily_series(corpus).day(3) == date(2015, 6, 4)


class TestRollingMean:
    def test_constant_series(self):
        corpus = TweetCorpus([record(i, tweet_id=i) for i in range(10)])
        rolling = daily_series(corpus).rolling_mean(window=3)
        np.testing.assert_allclose(rolling, 1.0)

    def test_window_one_is_identity(self):
        corpus = TweetCorpus([
            record(0, tweet_id=1), record(0, tweet_id=2), record(1, tweet_id=3),
        ])
        series = daily_series(corpus)
        np.testing.assert_allclose(series.rolling_mean(1), series.counts)

    def test_invalid_window(self):
        corpus = TweetCorpus([record(0, tweet_id=1)])
        with pytest.raises(ValueError):
            daily_series(corpus).rolling_mean(0)


class TestBurstDetection:
    def _bursty_corpus(self):
        records = []
        tweet_id = 0
        for day in range(30):
            volume = 3 if day != 20 else 40  # a campaign-day spike
            for __ in range(volume):
                tweet_id += 1
                records.append(record(day, tweet_id=tweet_id, user_id=tweet_id))
        return TweetCorpus(records)

    def test_detects_planted_burst(self):
        series = daily_series(self._bursty_corpus())
        bursts = detect_bursts(series, window=14, threshold=3.0)
        assert [burst.day for burst in bursts] == [date(2015, 6, 21)]
        assert bursts[0].count == 40
        assert bursts[0].z_score > 3.0

    def test_quiet_series_no_bursts(self):
        corpus = TweetCorpus([
            record(day, tweet_id=day) for day in range(20)
        ])
        assert detect_bursts(daily_series(corpus)) == []

    def test_threshold_controls_sensitivity(self):
        series = daily_series(self._bursty_corpus())
        strict = detect_bursts(series, threshold=10.0)
        loose = detect_bursts(series, threshold=1.5)
        assert len(strict) <= len(loose)

    def test_invalid_parameters(self):
        series = daily_series(self._bursty_corpus())
        with pytest.raises(ValueError):
            detect_bursts(series, window=1)
        with pytest.raises(ValueError):
            detect_bursts(series, threshold=0)


class TestOnSyntheticCorpus:
    def test_volume_spread_over_full_window(self, corpus):
        series = daily_series(corpus)
        assert series.n_days >= 380
        # Uniform generation: no extreme bursts expected.
        assert len(detect_bursts(series, threshold=5.0)) <= 2
