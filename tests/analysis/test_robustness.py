"""Tests for temporal robustness analysis."""

import pytest

from repro.analysis.robustness import (
    organ_characterization_stability,
    temporal_split,
)
from repro.organs import Organ


class TestTemporalSplit:
    def test_halves_partition_corpus(self, corpus):
        first, second = temporal_split(corpus)
        assert len(first) + len(second) == len(corpus)

    def test_halves_roughly_balanced(self, corpus):
        first, second = temporal_split(corpus)
        ratio = len(first) / len(corpus)
        assert 0.4 < ratio < 0.6

    def test_halves_time_ordered(self, corpus):
        first, second = temporal_split(corpus)
        assert first.time_span()[1] <= second.time_span()[0]


class TestStability:
    @pytest.fixture(scope="class")
    def stability(self, midsize_corpus):
        return organ_characterization_stability(midsize_corpus)

    def test_structure_is_stationary(self, stability):
        """The generative process is time-homogeneous, so the two halves
        must agree closely — validating the paper's static aggregation."""
        assert stability.mean_row_distance < 0.01

    def test_major_organ_readings_agree(self, stability):
        assert stability.top_co_organ_agreement >= 4 / 6

    def test_distances_cover_major_organs(self, stability):
        assert Organ.HEART in stability.row_distances
        assert Organ.KIDNEY in stability.row_distances

    def test_counts_reported(self, stability):
        assert stability.n_first > 0
        assert stability.n_second > 0
        assert stability.split_at_iso.startswith("201")
