"""Tests for organ co-mention analysis."""

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.analysis.co_occurrence import organ_co_occurrence
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.geo.geocoder import GeoMatch
from repro.organs import Organ
from repro.twitter.models import Tweet, UserProfile


def record(user_id, organs, tweet_id):
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=tweet_id,
            user=UserProfile(user_id=user_id, screen_name=f"u{user_id}"),
            text="t",
            created_at=datetime(2015, 6, 1, tzinfo=timezone.utc),
        ),
        location=GeoMatch("US", "KS", 0.95, "test"),
        mentions=organs,
    )


@pytest.fixture()
def corpus():
    return TweetCorpus([
        record(1, {Organ.HEART: 1, Organ.KIDNEY: 1}, 1),   # co-tweet
        record(2, {Organ.HEART: 1}, 2),
        record(2, {Organ.KIDNEY: 1}, 3),                    # co-user only
        record(3, {Organ.LIVER: 1}, 4),
        record(4, {Organ.HEART: 1}, 5),
    ])


class TestTweetLevel:
    def test_pair_counted_within_tweet_only(self, corpus):
        result = organ_co_occurrence(corpus, level="tweet")
        assert result.pair_count(Organ.HEART, Organ.KIDNEY) == 1
        assert result.n_units == 5

    def test_diagonal_is_marginal(self, corpus):
        result = organ_co_occurrence(corpus, level="tweet")
        assert result.counts[Organ.HEART.index, Organ.HEART.index] == 3

    def test_symmetry(self, corpus):
        result = organ_co_occurrence(corpus, level="tweet")
        np.testing.assert_array_equal(result.counts, result.counts.T)


class TestUserLevel:
    def test_user_aggregation_counts_cross_tweet_pairs(self, corpus):
        result = organ_co_occurrence(corpus, level="user")
        # users 1 and 2 both mention heart+kidney (user 2 across tweets).
        assert result.pair_count(Organ.HEART, Organ.KIDNEY) == 2
        assert result.n_units == 4

    def test_user_level_default(self, corpus):
        assert organ_co_occurrence(corpus).level == "user"


class TestLift:
    def test_positive_association_lift_above_one(self, corpus):
        result = organ_co_occurrence(corpus, level="user")
        # heart: 3/4 users, kidney: 2/4; expected pairs 4*(3/4)*(2/4)=1.5,
        # observed 2 → lift 4/3.
        assert result.pair_lift(Organ.HEART, Organ.KIDNEY) == pytest.approx(4 / 3)

    def test_unobserved_pair_nan_or_zero(self, corpus):
        result = organ_co_occurrence(corpus, level="user")
        lift = result.pair_lift(Organ.LUNG, Organ.PANCREAS)
        assert np.isnan(lift)

    def test_diagonal_nan(self, corpus):
        result = organ_co_occurrence(corpus)
        assert np.isnan(result.lift[0, 0])


class TestTopPairs:
    def test_ordering(self, corpus):
        result = organ_co_occurrence(corpus, level="user")
        top = result.top_pairs(k=1)[0]
        assert {top[0], top[1]} == {Organ.HEART, Organ.KIDNEY}

    def test_unknown_level_rejected(self, corpus):
        with pytest.raises(ValueError):
            organ_co_occurrence(corpus, level="sentence")


class TestOnSyntheticCorpus:
    def test_dual_transplant_pairs_rank_high(self, midsize_corpus):
        """The planted co-attention makes the cited dual-transplant pairs
        among the most co-mentioned."""
        result = organ_co_occurrence(midsize_corpus, level="user")
        assert result.dual_transplant_rank() <= 5.0

    def test_heart_kidney_is_top_pair(self, midsize_corpus):
        result = organ_co_occurrence(midsize_corpus, level="user")
        a, b, __, __ = result.top_pairs(k=1)[0]
        assert {a, b} == {Organ.HEART, Organ.KIDNEY}
