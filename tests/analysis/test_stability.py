"""Tests for the bootstrap co-attention stability analysis."""

import pytest

from repro.analysis.stability import co_attention_stability
from repro.core.attention import build_attention_matrix
from repro.errors import CharacterizationError
from repro.organs import ORGANS, Organ


@pytest.fixture(scope="module")
def stability(midsize_corpus):
    attention = build_attention_matrix(midsize_corpus)
    return co_attention_stability(attention, n_replicates=60, seed=1)


class TestStability:
    def test_all_present_organs_analyzed(self, stability):
        assert set(stability) == set(ORGANS)

    def test_stability_in_unit_interval(self, stability):
        for result in stability.values():
            assert 0.0 <= result.stability <= 1.0
            assert sum(result.replicate_tops.values()) == 60

    def test_full_data_top_is_not_self(self, stability):
        for organ, result in stability.items():
            assert result.full_data_top is not organ

    def test_paper_caveat_intestine_least_stable(self, stability):
        """§IV-A: intestine statistics are 'less reliable' — its bootstrap
        stability must be below the large heart group's."""
        assert (
            stability[Organ.INTESTINE].stability
            <= stability[Organ.HEART].stability
        )
        assert stability[Organ.HEART].stability > 0.9

    def test_group_sizes_follow_popularity(self, stability):
        assert (
            stability[Organ.HEART].group_size
            > stability[Organ.INTESTINE].group_size
        )

    def test_deterministic_per_seed(self, midsize_corpus):
        attention = build_attention_matrix(midsize_corpus)
        a = co_attention_stability(attention, n_replicates=10, seed=5)
        b = co_attention_stability(attention, n_replicates=10, seed=5)
        assert {o: r.stability for o, r in a.items()} == {
            o: r.stability for o, r in b.items()
        }

    def test_invalid_replicates(self, midsize_corpus):
        attention = build_attention_matrix(midsize_corpus)
        with pytest.raises(CharacterizationError):
            co_attention_stability(attention, n_replicates=0)
