"""Tests for demographic representation bias."""

from datetime import datetime, timezone

import pytest

from repro.analysis.bias import representation_bias
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.geo.gazetteer import CensusRegion
from repro.geo.geocoder import GeoMatch
from repro.organs import Organ
from repro.twitter.models import Tweet, UserProfile


def record(user_id, state, tweet_id):
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=tweet_id,
            user=UserProfile(user_id=user_id, screen_name=f"u{user_id}"),
            text="t",
            created_at=datetime(2015, 6, 1, tzinfo=timezone.utc),
        ),
        location=GeoMatch("US", state, 0.95, "test"),
        mentions={Organ.HEART: 1},
    )


class TestRepresentationRatios:
    def test_balanced_state_near_one(self):
        # CA is ~12.2% of the gazetteer population; a corpus with 12 of
        # 100 users in CA should give a ratio near 1.
        records = [record(i, "CA", i) for i in range(12)]
        records += [record(100 + i, "TX", 100 + i) for i in range(9)]
        records += [record(200 + i, "NY", 200 + i) for i in range(6)]
        records += [record(300 + i, "FL", 300 + i) for i in range(6)]
        records += [record(400 + i, "PA", 400 + i) for i in range(4)]
        records += [record(500 + i, "OH", 500 + i) for i in range(63)]
        bias = representation_bias(TweetCorpus(records))
        assert bias.state_ratio["CA"] == pytest.approx(1.0, abs=0.05)

    def test_small_state_ratio_dwarfs_large_state_at_equal_counts(self):
        records = [record(i, "WY", i) for i in range(50)]
        records += [record(100 + i, "CA", 100 + i) for i in range(50)]
        bias = representation_bias(TweetCorpus(records))
        assert bias.state_ratio["WY"] > 10  # WY is ~0.2% of population
        # Equal user counts, ~67× population difference.
        assert bias.state_ratio["WY"] > 30 * bias.state_ratio["CA"]

    def test_users_counted_once(self):
        # One user with many tweets counts once.
        records = [record(1, "WY", i) for i in range(10)]
        records.append(record(2, "CA", 99))
        bias = representation_bias(TweetCorpus(records))
        assert bias.n_users == 2

    def test_region_ratio_aggregates(self):
        records = [record(i, "KS", i) for i in range(10)]
        records += [record(100 + i, "CA", 100 + i) for i in range(10)]
        bias = representation_bias(TweetCorpus(records))
        # Kansas is a far smaller share of the Midwest than CA of the
        # West, so equal counts over-represent the Midwest more.
        assert bias.region_ratio[CensusRegion.MIDWEST] > (
            bias.region_ratio[CensusRegion.WEST]
        )
        # Regions with no corpus users read as fully under-represented.
        assert bias.region_ratio[CensusRegion.SOUTH] == 0.0

    def test_underrepresented_states_sorted(self):
        records = [record(i, "CA", i) for i in range(99)]
        records.append(record(100, "TX", 100))
        bias = representation_bias(TweetCorpus(records))
        assert "TX" in bias.underrepresented_states()


class TestOnSyntheticCorpus:
    def test_midwest_underrepresented_as_paper_notes(self, midsize_corpus):
        """§V: 'the Midwestern population … is underrepresented among
        Twitter users' — planted via the midwest_bias knob and measured
        here end to end."""
        bias = representation_bias(midsize_corpus)
        assert bias.region_ratio[CensusRegion.MIDWEST] < 1.0
        assert bias.most_biased_region() in (
            CensusRegion.MIDWEST, CensusRegion.OTHER,
        )

    def test_ratios_cover_every_populated_state(self, midsize_corpus):
        bias = representation_bias(midsize_corpus)
        assert len(bias.state_ratio) >= 50
