"""Tests for Fig. 5 / Fig. 6 consistency measurement."""

import pytest

from repro.analysis.consistency import highlight_cluster_consistency
from repro.core.characterize import characterize_regions
from repro.core.relative_risk import highlighted_organs
from repro.core.state_clusters import cluster_states
from repro.organs import Organ


@pytest.fixture(scope="module")
def clustering(midsize_corpus):
    return cluster_states(characterize_regions(midsize_corpus))


@pytest.fixture(scope="module")
def highlights(midsize_corpus):
    return highlighted_organs(midsize_corpus)


class TestZoneConsistency:
    def test_counts_are_consistent(self, clustering, highlights):
        result = highlight_cluster_consistency(clustering, highlights, 8)
        assert 0 <= result.pairs_co_clustered <= result.same_highlight_pairs
        assert result.expected_co_clustered >= 0

    def test_paper_claim_clusters_consistent_with_highlights(
        self, clustering, highlights
    ):
        """'Such clusters present some degree of consistence with the …
        organs that are highlighted at each state' — enrichment > 1."""
        result = highlight_cluster_consistency(clustering, highlights, 8)
        assert result.same_highlight_pairs >= 5
        assert result.enrichment > 1.0

    def test_enrichment_monotone_reasonable_over_cuts(self, clustering,
                                                      highlights):
        for n_clusters in (4, 8, 12):
            result = highlight_cluster_consistency(
                clustering, highlights, n_clusters
            )
            assert result.n_clusters == n_clusters
            assert result.observed_rate >= 0

    def test_synthetic_perfect_consistency(self):
        """Hand-built case: two clean zones → enrichment >> 1."""
        import numpy as np

        from repro.cluster.agglomerative import AgglomerativeClustering
        from repro.cluster.distances import pairwise_distances
        from repro.config import StateClusteringConfig
        from repro.core.state_clusters import StateClustering

        rows = np.array([
            [0.8, 0.1, 0.1],
            [0.79, 0.11, 0.1],
            [0.1, 0.8, 0.1],
            [0.11, 0.79, 0.1],
        ])
        distances = pairwise_distances(
            np.pad(rows, ((0, 0), (0, 3)), constant_values=1e-9)
        )
        dendrogram = AgglomerativeClustering().fit(distances)
        clustering = StateClustering(
            states=("A1", "A2", "B1", "B2"),
            distance_matrix=distances,
            dendrogram=dendrogram,
            config=StateClusteringConfig(),
        )
        highlights = {
            "A1": (Organ.HEART,), "A2": (Organ.HEART,),
            "B1": (Organ.KIDNEY,), "B2": (Organ.KIDNEY,),
        }
        result = highlight_cluster_consistency(clustering, highlights, 2)
        assert result.same_highlight_pairs == 2
        assert result.pairs_co_clustered == 2
        assert result.enrichment > 1.5
