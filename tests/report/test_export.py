"""Tests for CSV artifact export."""

import csv
import io

import pytest

from repro.report import export


def parse(text: str) -> list[list[str]]:
    return list(csv.reader(io.StringIO(text)))


class TestIndividualEmitters:
    def test_table1(self, suite):
        rows = parse(export.table1_csv(suite))
        assert rows[0] == ["statistic", "value"]
        assert any("Tweets collected" in row[0] for row in rows[1:])

    def test_fig2_sections(self, suite):
        rows = parse(export.fig2_csv(suite))
        series = {row[0] for row in rows[1:]}
        assert series == {
            "users_per_organ", "mention_histogram", "spearman_vs_transplants",
        }

    def test_fig3_matrix_rows_sum_to_one(self, suite):
        rows = parse(export.fig3_csv(suite))
        for row in rows[1:]:
            assert sum(map(float, row[1:])) == pytest.approx(1.0)

    def test_fig4_covers_states(self, suite):
        rows = parse(export.fig4_csv(suite))
        assert len(rows) - 1 == len(suite.region_characterization.states)

    def test_fig5_columns(self, suite):
        rows = parse(export.fig5_csv(suite))
        assert rows[0][:3] == ["state", "organ", "rr"]
        assert len(rows) > 100  # states × organs

    def test_fig6_upper_triangle(self, suite):
        rows = parse(export.fig6_csv(suite))
        n = len(suite.region_characterization.states)
        assert len(rows) - 1 == n * (n - 1) // 2

    def test_fig7_cluster_count(self, suite):
        rows = parse(export.fig7_csv(suite))
        assert len(rows) - 1 == 12


class TestExportAll:
    def test_writes_all_files(self, suite, tmp_path):
        paths = export.export_all_csv(suite, tmp_path / "csv")
        assert len(paths) == 7
        for path in paths:
            assert path.exists()
            assert path.stat().st_size > 20

    def test_files_parse_as_csv(self, suite, tmp_path):
        for path in export.export_all_csv(suite, tmp_path):
            rows = parse(path.read_text())
            width = len(rows[0])
            assert all(len(row) == width for row in rows), path
