"""Tests for the experiment suite (every paper artifact regenerates)."""


from repro.organs import ORGANS, Organ
from repro.report.experiments import ExperimentSuite


class TestTable1:
    def test_renders(self, suite):
        text = suite.run_table1().render()
        assert "TABLE I" in text
        assert "Tweets collected" in text
        assert "US yield" in text

    def test_without_report(self, corpus):
        text = ExperimentSuite(corpus).run_table1().render()
        assert "provenance" not in text.lower()


class TestFig2:
    def test_popularity_and_correlation(self, suite):
        result = suite.run_fig2()
        assert result.popularity_order()[0] is Organ.HEART
        assert result.popularity_order()[-1] is Organ.INTESTINE
        assert 0.5 < result.correlation.r <= 1.0

    def test_renders(self, suite):
        text = suite.run_fig2().render()
        assert "Fig. 2(a)" in text
        assert "Spearman" in text


class TestFig3:
    def test_renders_all_panels(self, suite):
        text = suite.run_fig3().render()
        for organ in ORGANS:
            assert f"[{organ.value}]" in text


class TestFig4:
    def test_renders_subset(self, suite):
        text = suite.run_fig4().render(states=("KS", "MA"))
        assert "[KS]" in text
        assert "[MA]" in text
        assert "[CA]" not in text


class TestFig5:
    def test_structure(self, suite):
        result = suite.run_fig5()
        assert set(result.highlights) <= set(
            suite.region_characterization.states
        )
        assert "Fig. 5" in result.render()

    def test_risks_cover_states(self, suite):
        result = suite.run_fig5()
        states = {risk.state for risk in result.risks}
        assert states == set(result.highlights)


class TestFig6:
    def test_renders_heatmap_and_zones(self, suite):
        text = suite.run_fig6().render(n_clusters=4)
        assert "Fig. 6" in text
        assert "zones" in text


class TestFig7:
    def test_renders(self, suite):
        result = suite.run_fig7()
        assert result.clustering.k == 12
        text = result.render()
        assert "silhouette" in text
        assert "[cluster" in text


class TestFig1:
    def test_query_set_rendered(self, suite):
        result = suite.run_fig1()
        assert result.n_queries == len(result.context_terms) * len(
            result.subject_terms
        )
        text = result.render()
        assert "Context" in text
        assert "Subject" in text


class TestSecondary:
    def test_all_sections_render(self, suite):
        text = suite.run_secondary().render()
        assert "co-mentions" in text
        assert "representation" in text.lower()
        assert "consistency" in text

    def test_components_populated(self, suite):
        result = suite.run_secondary()
        assert result.co_occurrence.n_units == suite.corpus.n_users
        assert result.bias.n_users > 0
        assert result.consistency.n_clusters == 8


class TestSharedIntermediates:
    def test_attention_cached(self, suite):
        assert suite.attention is suite.attention

    def test_characterizations_cached(self, suite):
        assert suite.organ_characterization is suite.organ_characterization
        assert suite.region_characterization is suite.region_characterization
