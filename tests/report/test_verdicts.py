"""Tests for the reproduction verdict battery."""

import pytest

from repro.report.verdicts import ReproductionReport, Verdict, evaluate_reproduction


class TestEvaluateReproduction:
    @pytest.fixture(scope="class")
    def report(self, midsize_suite):
        return evaluate_reproduction(midsize_suite)

    def test_covers_every_artifact(self, report):
        artifacts = {verdict.artifact for verdict in report.verdicts}
        assert artifacts == {
            "Table I", "Fig.2a", "Fig.2b", "Fig.3", "Fig.4", "Fig.5",
            "Fig.6", "Fig.7",
        }

    def test_all_pass_on_calibrated_fixture(self, report):
        failing = [v.check for v in report.verdicts if not v.passed]
        assert not failing, failing

    def test_evidence_populated(self, report):
        assert all(verdict.evidence for verdict in report.verdicts)

    def test_render_contains_summary(self, report):
        text = report.render()
        assert "checks passed" in text
        assert "PASS" in text


class TestReproductionReport:
    def test_counting(self):
        report = ReproductionReport(verdicts=(
            Verdict("a", "X", True, "e"),
            Verdict("b", "X", False, "e"),
        ))
        assert report.n_passed == 1
        assert not report.all_passed
        assert "FAIL" in report.render()

    def test_all_passed(self):
        report = ReproductionReport(verdicts=(
            Verdict("a", "X", True, "e"),
        ))
        assert report.all_passed
