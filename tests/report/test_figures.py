"""Tests for ASCII figure rendering."""

import pytest

from repro.report.figures import bar_chart, heatmap, ranked_bars


class TestBarChart:
    def test_basic(self):
        text = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_log_scale_compresses(self):
        linear = bar_chart(["a", "b"], [1000.0, 10.0], width=30)
        logged = bar_chart(["a", "b"], [1000.0, 10.0], width=30, log_scale=True)
        linear_small = linear.splitlines()[1].count("█")
        logged_small = logged.splitlines()[1].count("█")
        assert logged_small > linear_small

    def test_title(self):
        text = bar_chart(["a"], [1.0], title="Chart")
        assert text.splitlines()[0] == "Chart"

    def test_zero_values(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "█" not in text

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a", "b"], [1.0])

    def test_values_displayed(self):
        assert "1,234" in bar_chart(["a"], [1234.0])


class TestRankedBars:
    def test_from_profile(self):
        from repro.organs import Organ

        text = ranked_bars([(Organ.HEART, 0.9), (Organ.KIDNEY, 0.1)])
        assert "heart" in text
        assert "kidney" in text


class TestDendrogramText:
    def test_renders_leaves_in_tree_order(self):
        from repro.report.figures import dendrogram_text

        # Leaves 0,1 merge low; 2 joins high.
        text = dendrogram_text(
            ["A", "B", "C"],
            [(0, 1, 0.1), (3, 2, 1.0)],
        )
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].lstrip().startswith("A")
        assert lines[1].lstrip().startswith("B")
        assert lines[2].lstrip().startswith("C")

    def test_bar_length_tracks_merge_height(self):
        from repro.report.figures import dendrogram_text

        text = dendrogram_text(["A", "B", "C"], [(0, 1, 0.1), (3, 2, 1.0)])
        lines = text.splitlines()
        assert lines[0].count("─") < lines[2].count("─")

    def test_merge_count_validated(self):
        from repro.report.figures import dendrogram_text

        with pytest.raises(ValueError):
            dendrogram_text(["A", "B", "C"], [(0, 1, 0.1)])

    def test_single_leaf(self):
        from repro.report.figures import dendrogram_text

        text = dendrogram_text(["ONLY"], [])
        assert "ONLY" in text
        assert len(text.splitlines()) == 1

    def test_title_line(self):
        from repro.report.figures import dendrogram_text

        text = dendrogram_text(["A", "B"], [(0, 1, 0.5)], title="Tree")
        assert text.splitlines()[0] == "Tree"

    def test_works_on_real_clustering(self, suite):
        from repro.report.figures import dendrogram_text

        clustering = suite.run_fig6().clustering
        text = dendrogram_text(
            list(clustering.states),
            [(m.left, m.right, m.height) for m in clustering.dendrogram.merges],
        )
        assert len(text.splitlines()) == len(clustering.states)


class TestHeatmap:
    def test_square_rendering(self):
        text = heatmap(["A", "B"], [[0.0, 1.0], [1.0, 0.0]])
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 rows

    def test_extremes_use_extreme_shades(self):
        text = heatmap(["A", "B"], [[0.0, 9.0], [9.0, 0.0]])
        assert "@" in text
        assert " " in text

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            heatmap(["A", "B"], [[0.0, 1.0]])

    def test_constant_matrix_no_crash(self):
        heatmap(["A", "B"], [[1.0, 1.0], [1.0, 1.0]])
