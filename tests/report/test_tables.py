"""Tests for text table rendering."""

import pytest

from repro.report.tables import render_table


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["name", "count"], [["heart", 10], ["kidney", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "heart" in lines[2]
        # Numeric column right-aligned: widths line up.
        assert lines[2].rstrip().endswith("10")
        assert lines[3].rstrip().endswith("2")

    def test_title(self):
        text = render_table(["a"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_commas_and_percent_treated_numeric(self):
        text = render_table(["v"], [["1,234"], ["56%"]])
        lines = text.splitlines()
        assert lines[2].endswith("1,234")

    def test_mixed_column_left_aligned(self):
        text = render_table(["v"], [["abc"], ["123"]])
        lines = text.splitlines()
        assert lines[2].startswith("abc")
        assert lines[3].startswith("123")
