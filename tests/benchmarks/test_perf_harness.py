"""Tests for the performance-benchmark harness and its JSON schema."""

import json

import pytest

from benchmarks.perf.harness import (
    SCHEMA_VERSION,
    run_suite,
    synthetic_attention,
    validate_payload,
)
from benchmarks.perf.run_bench import main as run_bench_main


@pytest.fixture(scope="module")
def smoke_payload():
    return run_suite(
        sizes=(1_500,), worker_counts=(1, 2), seed=5, smoke=True,
        cluster_users_n=300, cluster_ks=(11, 12),
        durability_counts=(400,),
        observability_sizes=(1_500,),
    )


class TestRunSuite:
    def test_payload_validates(self, smoke_payload):
        assert validate_payload(smoke_payload) == []

    def test_parallel_runs_byte_identical(self, smoke_payload):
        runs = smoke_payload["pipeline"][0]["runs"]
        assert [run["workers"] for run in runs] == [1, 2]
        assert runs[1]["byte_identical_to_serial"] is True

    def test_throughput_and_speedup_recorded(self, smoke_payload):
        for run in smoke_payload["pipeline"][0]["runs"]:
            assert run["throughput_tweets_per_s"] > 0
            assert run["speedup_vs_serial"] > 0

    def test_cpu_count_recorded(self, smoke_payload):
        assert smoke_payload["cpu_count"] >= 1

    def test_json_serializable(self, smoke_payload):
        assert json.loads(json.dumps(smoke_payload)) is not None

    def test_durability_run_is_equivalent_and_verified(self, smoke_payload):
        (run,) = smoke_payload["durability"]["runs"]
        assert run["records"] == 400
        assert run["byte_identical_to_plain"] is True
        assert run["manifest_verified"] is True
        assert run["overhead_vs_plain"] > 0

    def test_serving_overload_is_accounted(self, smoke_payload):
        runs = smoke_payload["serving"]["runs"]
        assert [run["offered_x_capacity"] for run in runs] == [1, 4, 16]
        for run in runs:
            assert run["accounting_exact"] is True
            assert 0.0 <= run["shed_rate"] <= 1.0
            assert run["throughput_responses_per_s"] > 0
        # 16x offered load must shed more than 1x (explicit back-pressure).
        assert runs[-1]["shed_rate"] > runs[0]["shed_rate"]

    def test_observability_run_is_equivalent_and_traced(self, smoke_payload):
        (run,) = smoke_payload["observability"]["runs"]
        assert run["size_target"] == 1_500
        assert run["byte_identical_to_untraced"] is True
        assert run["overhead_vs_untraced"] > 0
        assert run["trace_lines"] > 1  # meta header plus real records
        assert run["trace_bytes"] > 0


class TestValidatePayload:
    def test_rejects_non_object(self):
        assert validate_payload([]) == ["payload is not an object"]

    def test_rejects_wrong_schema_version(self, smoke_payload):
        bad = dict(smoke_payload, schema_version=SCHEMA_VERSION + 1)
        assert any("schema_version" in p for p in validate_payload(bad))

    def test_rejects_missing_pipeline(self, smoke_payload):
        bad = {k: v for k, v in smoke_payload.items() if k != "pipeline"}
        assert any("pipeline" in p for p in validate_payload(bad))

    def test_rejects_non_identical_parallel_run(self, smoke_payload):
        bad = json.loads(json.dumps(smoke_payload))
        bad["pipeline"][0]["runs"][1]["byte_identical_to_serial"] = False
        assert any("byte-identical" in p for p in validate_payload(bad))

    def test_rejects_unverified_durability_run(self, smoke_payload):
        bad = json.loads(json.dumps(smoke_payload))
        bad["durability"]["runs"][0]["manifest_verified"] = False
        assert any("sidecar" in p for p in validate_payload(bad))

    def test_rejects_inexact_serving_accounting(self, smoke_payload):
        bad = json.loads(json.dumps(smoke_payload))
        bad["serving"]["runs"][0]["accounting_exact"] = False
        assert any(
            "accounting is not exact" in p for p in validate_payload(bad)
        )

    def test_rejects_non_identical_traced_run(self, smoke_payload):
        bad = json.loads(json.dumps(smoke_payload))
        bad["observability"]["runs"][0]["byte_identical_to_untraced"] = False
        assert any(
            "traced corpus" in p for p in validate_payload(bad)
        )


class TestSyntheticAttention:
    def test_rows_normalized(self):
        attention = synthetic_attention(50, seed=0)
        sums = attention.normalized.sum(axis=1)
        assert abs(sums - 1.0).max() < 1e-9

    def test_deterministic(self):
        a = synthetic_attention(30, seed=1)
        b = synthetic_attention(30, seed=1)
        assert (a.counts == b.counts).all()


class TestCli:
    def test_smoke_writes_artifact(self, tmp_path):
        output = tmp_path / "BENCH_pipeline.json"
        code = run_bench_main([
            "--smoke", "--sizes", "1500", "--workers", "1", "2",
            "--output", str(output),
        ])
        assert code == 0
        payload = json.loads(output.read_text())
        assert validate_payload(payload) == []
        assert payload["smoke"] is True

    def test_workers_must_start_with_serial(self, tmp_path, capsys):
        code = run_bench_main([
            "--smoke", "--workers", "2",
            "--output", str(tmp_path / "x.json"),
        ])
        assert code == 2
