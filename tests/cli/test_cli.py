"""Tests for the command-line interface."""

import pytest

from repro.cli.main import build_parser, main


@pytest.fixture(scope="module")
def firehose(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "firehose.jsonl"
    code = main(["generate", str(path), "--scale", "0.004", "--seed", "3"])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def corpus_file(firehose, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "corpus.jsonl"
    code = main(["collect", str(firehose), str(path)])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.jsonl"])
        assert args.scale == 0.02
        assert args.seed == 0


class TestGenerate:
    def test_writes_jsonl(self, firehose):
        lines = firehose.read_text().strip().splitlines()
        assert len(lines) > 500
        assert lines[0].startswith("{")

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        main(["generate", str(a), "--scale", "0.002", "--seed", "9"])
        main(["generate", str(b), "--scale", "0.002", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestCollect:
    def test_produces_corpus(self, corpus_file):
        from repro.dataset.corpus import TweetCorpus
        from repro.dataset.io import read_jsonl

        corpus = TweetCorpus(read_jsonl(corpus_file))
        assert len(corpus) > 50
        assert all(record.state is not None for record in corpus)

    def test_missing_firehose_errors(self, tmp_path, capsys):
        code = main([
            "collect", str(tmp_path / "nope.jsonl"), str(tmp_path / "o.jsonl"),
        ])
        assert code != 0 or "error" in capsys.readouterr().out.lower()

    def test_no_geotag_flag(self, firehose, tmp_path, capsys):
        out = tmp_path / "nogps.jsonl"
        code = main(["collect", str(firehose), str(out), "--no-geotag"])
        assert code == 0
        assert "Located via GPS geo-tag: 0" in capsys.readouterr().out

    def test_chaos_flag_same_corpus(self, firehose, corpus_file, tmp_path,
                                     capsys):
        out = tmp_path / "chaos.jsonl"
        code = main([
            "collect", str(firehose), str(out), "--chaos", "--chaos-seed", "5",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "chaos mode" in printed
        assert "Disconnects survived" in printed
        # The headline guarantee: injected faults never change the corpus.
        assert out.read_bytes() == corpus_file.read_bytes()

    def test_chaos_seed_changes_fault_schedule(self, firehose, tmp_path,
                                               capsys):
        out = tmp_path / "chaos2.jsonl"
        code = main([
            "collect", str(firehose), str(out), "--chaos", "--chaos-seed", "9",
        ])
        assert code == 0
        assert "seed=9" in capsys.readouterr().out


class TestWorkerChaos:
    def test_worker_chaos_flag_same_corpus(self, firehose, corpus_file,
                                           tmp_path, capsys):
        out = tmp_path / "wchaos.jsonl"
        code = main([
            "collect", str(firehose), str(out),
            "--workers", "2", "--worker-chaos", "--worker-chaos-seed", "5",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "worker chaos mode" in printed
        assert "Worker crashes survived" in printed
        assert "Tasks quarantined: 0" in printed
        # Injected worker faults never change the corpus either.
        assert out.read_bytes() == corpus_file.read_bytes()


class TestRun:
    def test_run_then_resume(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        argv = [
            "run", str(run_dir), "--scale", "0.01", "--seed", "7", "--k", "6",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "10 stages run, 0 skipped" in out
        assert (run_dir / "journal.json").exists()
        assert (run_dir / "fig7.txt").exists()
        assert main(argv + ["--resume"]) == 0
        assert "0 stages run, 10 skipped" in capsys.readouterr().out

    def test_run_refuses_existing_directory(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        argv = [
            "run", str(run_dir), "--scale", "0.01", "--seed", "7", "--k", "6",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 1
        assert "already contains" in capsys.readouterr().out

    def test_resume_without_journal_errors(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "missing"), "--resume"])
        assert code == 1
        assert "no journal" in capsys.readouterr().out


class TestAnalyze:
    def test_single_artifact(self, corpus_file, capsys):
        code = main([
            "analyze", str(corpus_file), "--artifacts", "table1", "--k", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out

    def test_multiple_artifacts_to_files(self, corpus_file, tmp_path):
        code = main([
            "analyze", str(corpus_file),
            "--artifacts", "table1,fig2,fig5",
            "--out", str(tmp_path / "artifacts"),
            "--k", "6",
        ])
        assert code == 0
        for name in ("table1", "fig2", "fig5"):
            assert (tmp_path / "artifacts" / f"{name}.txt").exists()

    def test_csv_export(self, corpus_file, tmp_path):
        code = main([
            "analyze", str(corpus_file), "--artifacts", "table1",
            "--csv", str(tmp_path / "csv"), "--k", "6",
        ])
        assert code == 0
        assert (tmp_path / "csv" / "fig5.csv").exists()
        assert len(list((tmp_path / "csv").glob("*.csv"))) == 7

    def test_unknown_artifact_rejected(self, corpus_file, capsys):
        code = main(["analyze", str(corpus_file), "--artifacts", "fig99"])
        assert code == 2
        assert "unknown artifacts" in capsys.readouterr().out

    def test_degenerate_corpus_reports_error(self, corpus_file, capsys):
        # k far beyond the user count must fail cleanly, not traceback.
        code = main([
            "analyze", str(corpus_file), "--artifacts", "fig7",
            "--k", "10000000",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().out.lower()


class TestMonitor:
    def test_emits_snapshots(self, firehose, capsys):
        code = main([
            "monitor", str(firehose), "--emit-every", "200",
            "--window-days", "90",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "done:" in out
        assert "tweets=" in out


class TestReproduce:
    def test_runs_and_reports_verdicts(self, capsys):
        # Small scale: some shape checks may fail for power, but the
        # battery itself must run and render.
        code = main(["reproduce", "--scale", "0.02", "--seed", "7"])
        out = capsys.readouterr().out
        assert "Reproduction verdicts" in out
        assert "checks passed" in out
        assert code in (0, 1)


class TestCalibrate:
    def test_calibrated_world_passes(self, capsys):
        code = main(["calibrate", "--scale", "0.02", "--seed", "1"])
        out = capsys.readouterr().out
        assert "us_yield" in out
        assert code == 0
        assert "CALIBRATED" in out


class TestDiskChaos:
    def test_disk_chaos_corpus_byte_identical(self, firehose, corpus_file,
                                              tmp_path, capsys):
        chaotic = tmp_path / "chaotic.jsonl"
        code = main([
            "collect", str(firehose), str(chaotic),
            "--disk-chaos", "--disk-chaos-seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "disk chaos mode" in out
        assert "transient EIO injected" in out
        assert chaotic.read_bytes() == corpus_file.read_bytes()


class TestScrub:
    def test_clean_corpus_exits_zero(self, corpus_file, capsys):
        code = main(["scrub", str(corpus_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "files scanned" in out

    def test_bitrot_is_quarantined_and_exit_nonzero(self, firehose,
                                                    tmp_path, capsys):
        from repro.faults.storage import flip_bits

        path = tmp_path / "corpus.jsonl"
        assert main(["collect", str(firehose), str(path)]) == 0
        flip_bits(str(path), seed=2, flips=3)
        capsys.readouterr()

        code = main(["scrub", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "quarantined" in out
        assert (tmp_path / "corpus.jsonl.quarantine.jsonl").exists()
        # A second scrub finds a healthy corpus again.
        assert main(["scrub", str(path)]) == 0

    def test_no_quarantine_reports_without_touching(self, firehose,
                                                    tmp_path, capsys):
        from repro.faults.storage import flip_bits

        path = tmp_path / "corpus.jsonl"
        assert main(["collect", str(firehose), str(path)]) == 0
        flip_bits(str(path), seed=2, flips=2)
        before = path.read_bytes()
        capsys.readouterr()

        code = main(["scrub", str(path), "--no-quarantine"])
        assert code == 1
        assert "corrupt" in capsys.readouterr().out
        assert path.read_bytes() == before
        assert not (tmp_path / "corpus.jsonl.quarantine.jsonl").exists()

    def test_repair_from_replica_directory(self, firehose, tmp_path, capsys):
        from repro.faults.storage import flip_bits

        path = tmp_path / "corpus.jsonl"
        replicas = tmp_path / "replicas"
        replicas.mkdir()
        assert main(["collect", str(firehose), str(path)]) == 0
        (replicas / path.name).write_bytes(path.read_bytes())
        flip_bits(str(path), seed=4, flips=2)
        capsys.readouterr()

        code = main(["scrub", str(path), "--repair-from", str(replicas)])
        assert code == 0
        assert "repaired" in capsys.readouterr().out

    def test_directory_scrub_discovers_sidecars(self, corpus_file, capsys):
        code = main(["scrub", str(corpus_file.parent)])
        assert code == 0
        assert "files scanned" in capsys.readouterr().out
