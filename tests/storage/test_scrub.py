"""Tests for the scrub/quarantine/repair engine."""

import json

import pytest

from repro.faults.storage import flip_bits
from repro.storage.manifest import (
    build_manifest,
    manifest_path,
    verify_file,
    write_manifest,
    write_text_with_manifest,
)
from repro.storage.scrub import (
    ScrubReport,
    quarantine_path,
    scrub_file,
    scrub_paths,
)


def jsonl(n: int, start: int = 0) -> str:
    return "".join(
        json.dumps({"record": i, "text": f"payload {i:04d}"}) + "\n"
        for i in range(start, start + n)
    )


@pytest.fixture()
def manifested(tmp_path):
    path = tmp_path / "corpus.jsonl"
    write_text_with_manifest(path, jsonl(8))
    return path


class TestCleanAndMissing:
    def test_clean_file(self, manifested):
        result = scrub_file(manifested)
        assert result.status == "clean"
        assert result.healthy

    def test_missing_manifest(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text("data\n")
        result = scrub_file(path)
        assert result.status == "missing-manifest"
        assert not result.healthy

    def test_corrupt_manifest(self, manifested):
        manifest_path(manifested).write_text("{broken")
        result = scrub_file(manifested)
        assert result.status == "corrupt-manifest"
        assert not result.healthy

    def test_missing_file_without_replica(self, manifested):
        manifested.unlink()
        result = scrub_file(manifested)
        assert result.status == "missing-file"
        assert not result.healthy


class TestQuarantine:
    def test_bitrot_is_quarantined_not_dropped(self, manifested):
        original_lines = manifested.read_bytes().split(b"\n")[:-1]
        lines = list(original_lines)
        lines[2] = b'{"record": 2, "text": "payloXd 0002"}'
        lines[5] = b'{"record": 5, "text": "pa\xffload 0005"}'
        manifested.write_bytes(b"\n".join(lines) + b"\n")

        result = scrub_file(manifested)
        assert result.status == "quarantined"
        assert result.records_quarantined == 2
        assert result.corrupt_lines == (3, 6)

        # Survivors: everything except the two rotten records.
        survivors = manifested.read_bytes().split(b"\n")[:-1]
        assert survivors == [
            line for i, line in enumerate(original_lines) if i not in (2, 5)
        ]
        # Nothing silently dropped: every removed line is dead-lettered.
        dead = quarantine_path(manifested)
        entries = [
            json.loads(line)
            for line in dead.read_text(encoding="utf-8").splitlines()
        ]
        assert [e["line"] for e in entries] == [3, 6]
        assert all(e["reason"].startswith("record CRC") for e in entries)
        assert entries[0]["payload"] == lines[2].decode()
        # The rewritten file and the dead-letter both verify clean now.
        assert verify_file(manifested).ok
        assert verify_file(dead).ok
        assert scrub_file(manifested).status == "clean"

    def test_no_quarantine_reports_without_modifying(self, manifested):
        damaged = bytearray(manifested.read_bytes())
        damaged[5] ^= 0x04
        manifested.write_bytes(bytes(damaged))
        before = manifested.read_bytes()
        result = scrub_file(manifested, quarantine=False)
        assert result.status == "corrupt"
        assert result.corrupt_lines == (1,)
        assert manifested.read_bytes() == before
        assert not quarantine_path(manifested).exists()

    def test_quarantine_appends_across_scrubs(self, manifested):
        for target_line in (0, 1):
            lines = manifested.read_bytes().split(b"\n")
            lines[target_line] = (
                b'{"rotten": ' + str(target_line).encode() + b"}"
            )
            manifested.write_bytes(b"\n".join(lines))
            scrub_file(manifested)
        dead = quarantine_path(manifested)
        entries = dead.read_text().splitlines()
        assert len(entries) == 2

    def test_corrupt_without_crcs_cannot_isolate(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"content")
        write_manifest(path, build_manifest(path, records=False))
        path.write_bytes(b"rotten!")
        result = scrub_file(path)
        assert result.status == "corrupt"
        assert "no per-record CRCs" in result.detail


class TestRepair:
    def test_repair_from_replica(self, manifested, tmp_path):
        replica_dir = tmp_path / "replicas"
        replica_dir.mkdir()
        (replica_dir / manifested.name).write_bytes(manifested.read_bytes())
        damaged = bytearray(manifested.read_bytes())
        damaged[3] ^= 0x10
        manifested.write_bytes(bytes(damaged))

        result = scrub_file(manifested, repair_from=replica_dir)
        assert result.status == "repaired"
        assert scrub_file(manifested).status == "clean"

    def test_repair_restores_missing_file(self, manifested, tmp_path):
        replica_dir = tmp_path / "replicas"
        replica_dir.mkdir()
        (replica_dir / manifested.name).write_bytes(manifested.read_bytes())
        manifested.unlink()
        result = scrub_file(manifested, repair_from=replica_dir)
        assert result.status == "repaired"
        assert verify_file(manifested).ok

    def test_wrong_replica_is_not_used(self, manifested, tmp_path):
        replica_dir = tmp_path / "replicas"
        replica_dir.mkdir()
        (replica_dir / manifested.name).write_text(jsonl(3, start=90))
        damaged = bytearray(manifested.read_bytes())
        damaged[3] ^= 0x10
        manifested.write_bytes(bytes(damaged))
        result = scrub_file(manifested, repair_from=replica_dir)
        # Falls through to per-record quarantine instead.
        assert result.status == "quarantined"


class TestStaleAndTruncated:
    def test_append_after_sidecar_is_stale_manifest(self, manifested):
        with open(manifested, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"record": 99}) + "\n")
        result = scrub_file(manifested)
        assert result.status == "stale-manifest"
        assert result.healthy
        # The sidecar was rebuilt to cover the tail.
        assert scrub_file(manifested).status == "clean"

    def test_stale_manifest_untouched_without_quarantine(self, manifested):
        with open(manifested, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"record": 99}) + "\n")
        side_before = manifest_path(manifested).read_bytes()
        result = scrub_file(manifested, quarantine=False)
        assert result.status == "stale-manifest"
        assert manifest_path(manifested).read_bytes() == side_before

    def test_lost_tail_is_truncated(self, manifested):
        lines = manifested.read_bytes().split(b"\n")
        manifested.write_bytes(b"\n".join(lines[:4]) + b"\n")
        result = scrub_file(manifested)
        assert result.status == "truncated"
        assert not result.healthy


class TestScrubPaths:
    def test_directory_discovers_manifested_files(self, tmp_path):
        for name in ("a.jsonl", "b.jsonl"):
            write_text_with_manifest(tmp_path / name, jsonl(2))
        (tmp_path / "ignored.txt").write_text("no sidecar")
        report = scrub_paths([tmp_path])
        assert report.files_scanned == 2
        assert report.all_clean

    def test_report_aggregates_and_renders(self, tmp_path):
        clean = tmp_path / "clean.jsonl"
        rotten = tmp_path / "rotten.jsonl"
        write_text_with_manifest(clean, jsonl(2))
        write_text_with_manifest(rotten, jsonl(4))
        flipped = flip_bits(str(rotten), seed=5, flips=2)
        assert flipped
        report = scrub_paths([tmp_path])
        assert report.files_scanned >= 2
        assert report.records_quarantined >= 1
        assert any("records quarantined" in line
                   for line in report.summary_lines())

    def test_sidecar_path_is_resolved_to_data(self, manifested):
        report = scrub_paths([manifest_path(manifested)])
        assert report.files_scanned == 1
        assert report.results[0].path == str(manifested)

    def test_empty_report_is_clean(self):
        assert ScrubReport().all_clean
