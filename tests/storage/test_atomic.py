"""Tests for the atomic-durable write primitive."""

import errno

import pytest

from repro.errors import ConfigError, StorageError
from repro.faults.storage import SimulatedCrash, StorageFaultPlan
from repro.storage.atomic import (
    AtomicWriter,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.storage.fs import FaultyFS


class TestCleanPath:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "f.txt"
        assert atomic_write_text(path, "héllo\n") == 7
        assert path.read_text(encoding="utf-8") == "héllo\n"

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "x")
        assert list(tmp_path.iterdir()) == [path]

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_streaming_digest_and_size(self, tmp_path):
        import hashlib

        path = tmp_path / "f.txt"
        with AtomicWriter(path) as writer:
            writer.write("abc")
            writer.write("déf")
        data = "abcdéf".encode()
        assert writer.bytes_written == len(data)
        assert writer.sha256_hex == hashlib.sha256(data).hexdigest()

    def test_binary_mode(self, tmp_path):
        path = tmp_path / "f.bin"
        payload = b"\x00\xff\n\x01"
        assert atomic_write_bytes(path, payload) == 4
        assert path.read_bytes() == payload

    def test_syscall_sequence_is_durable(self, tmp_path):
        fs = FaultyFS(StorageFaultPlan.none())
        atomic_write_text(tmp_path / "f.txt", "line\n", fs=fs)
        assert fs.trace == ["open:w", "write", "fsync", "replace",
                           "fsync_dir"]

    def test_negative_retries_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            AtomicWriter(tmp_path / "f.txt", retries=-1)

    def test_write_outside_context_rejected(self, tmp_path):
        writer = AtomicWriter(tmp_path / "f.txt")
        with pytest.raises(StorageError, match="outside its context"):
            writer.write("x")


class TestFailurePolicy:
    def test_transient_eio_absorbed_by_retry(self, tmp_path):
        path = tmp_path / "f.txt"
        fs = FaultyFS(StorageFaultPlan(eio_rate=1.0, max_eio_per_path=2))
        atomic_write_text(path, "content\n", fs=fs)
        assert path.read_text() == "content\n"
        assert fs.injected.eio > 0

    def test_eio_beyond_budget_surfaces_as_storage_error(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old")
        fs = FaultyFS(StorageFaultPlan(eio_rate=1.0, max_eio_per_path=10))
        with pytest.raises(StorageError, match="persisted through"):
            atomic_write_text(path, "new", fs=fs, retries=2)
        assert path.read_text() == "old"

    def test_enospc_degrades_explicitly(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old")
        fs = FaultyFS(StorageFaultPlan(enospc_at=1))
        with pytest.raises(StorageError, match="no space left"):
            atomic_write_text(path, "new", fs=fs)
        assert path.read_text() == "old"
        assert not (tmp_path / "f.txt.tmp").exists()

    def test_other_oserror_propagates_unchanged(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old")

        class Boom(FaultyFS):
            def replace(self, src, dst):
                raise OSError(errno.EPERM, "operation not permitted")

        with pytest.raises(OSError) as excinfo:
            atomic_write_text(path, "new", fs=Boom(StorageFaultPlan.none()))
        assert excinfo.value.errno == errno.EPERM
        assert path.read_text() == "old"

    def test_exception_in_body_aborts_cleanly(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old")
        with pytest.raises(ValueError):
            with AtomicWriter(path) as writer:
                writer.write("partial")
                raise ValueError("caller bug")
        assert path.read_text() == "old"
        assert not (tmp_path / "f.txt.tmp").exists()

    def test_simulated_crash_leaves_temp_for_recovery(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old")
        # open=0 write=1 fsync=2; crash during the fsync.
        fs = FaultyFS(StorageFaultPlan(crash_at=2))
        with pytest.raises(SimulatedCrash):
            with AtomicWriter(path, fs=fs) as writer:
                writer.write("new")
        assert path.read_text() == "old"  # destination untouched
        assert (tmp_path / "f.txt.tmp").exists()  # dead process tidies nothing

    def test_crash_during_replace_window_preserves_old(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old content\n")
        # open=0 write=1 fsync=2 replace=3 fsync_dir=4: crash at the
        # directory fsync reverts the not-yet-durable rename.
        fs = FaultyFS(StorageFaultPlan(crash_at=4))
        with pytest.raises(SimulatedCrash):
            atomic_write_text(path, "new content\n", fs=fs)
        assert path.read_text() == "old content\n"

    def test_crash_after_durable_rename_keeps_new(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old\n")
        fs = FaultyFS(StorageFaultPlan(crash_at=5))
        atomic_write_text(path, "new\n", fs=fs)  # completes: 5 syscalls 0-4
        with pytest.raises(SimulatedCrash):
            with fs.open(tmp_path / "other.txt", "w"):
                pass
        assert path.read_text() == "new\n"
