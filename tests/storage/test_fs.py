"""Tests for the filesystem abstraction and the fault-injecting FS."""

import pytest

from repro.faults.storage import SimulatedCrash, StorageFaultPlan
from repro.storage.fs import LOCAL_FS, FaultyFS, FileSystem, LocalFS


class TestLocalFS:
    def test_satisfies_protocol(self):
        assert isinstance(LocalFS(), FileSystem)

    def test_text_round_trip(self, tmp_path):
        path = tmp_path / "f.txt"
        with LOCAL_FS.open(path, "w") as handle:
            handle.write("héllo\n")
        with LOCAL_FS.open(path) as handle:
            assert handle.read() == "héllo\n"

    def test_fsync_and_fsync_dir(self, tmp_path):
        path = tmp_path / "f.txt"
        with LOCAL_FS.open(path, "w") as handle:
            handle.write("x")
            LOCAL_FS.fsync(handle)
        LOCAL_FS.fsync_dir(tmp_path)
        assert LOCAL_FS.exists(path)

    def test_replace_and_remove(self, tmp_path):
        src, dst = tmp_path / "a", tmp_path / "b"
        src.write_text("new")
        dst.write_text("old")
        LOCAL_FS.replace(src, dst)
        assert dst.read_text() == "new"
        assert not src.exists()
        LOCAL_FS.remove(dst)
        assert not dst.exists()

    def test_listdir_sorted(self, tmp_path):
        for name in ("c", "a", "b"):
            (tmp_path / name).write_text("")
        assert LOCAL_FS.listdir(tmp_path) == ["a", "b", "c"]


class TestFaultyFSCounting:
    def test_satisfies_protocol(self):
        assert isinstance(FaultyFS(), FileSystem)

    def test_counts_and_traces_write_path_syscalls(self, tmp_path):
        fs = FaultyFS(StorageFaultPlan.none())
        path = tmp_path / "f.txt"
        with fs.open(path, "w") as handle:
            handle.write("one\n")
            fs.fsync(handle)
        fs.replace(path, tmp_path / "g.txt")
        fs.fsync_dir(tmp_path)
        assert fs.trace == ["open:w", "write", "fsync", "replace", "fsync_dir"]
        assert fs.syscalls == 5

    def test_reads_pass_through_uncounted(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("data")
        fs = FaultyFS(StorageFaultPlan.none())
        with fs.open(path) as handle:
            assert handle.read() == "data"
        with fs.open(path, "rb") as handle:
            assert handle.read() == b"data"
        assert fs.syscalls == 0

    def test_recovery_rw_opens_pass_through_untracked(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"abcdef")
        fs = FaultyFS(StorageFaultPlan.none())
        with fs.open(path, "rb+") as handle:
            handle.truncate(3)
        assert path.read_bytes() == b"abc"
        assert fs.syscalls == 0


class TestCrashModel:
    def test_crash_truncates_unfsynced_bytes(self, tmp_path):
        path = tmp_path / "f.txt"
        # Syscalls: open:w=0 write=1 fsync=2 write=3; crash at index 4.
        fs = FaultyFS(StorageFaultPlan(crash_at=4))
        with pytest.raises(SimulatedCrash):
            with fs.open(path, "w") as handle:
                handle.write("durable\n")
                fs.fsync(handle)
                handle.write("volatile\n")
                handle.write("never-reached\n")
        assert path.read_text() == "durable\n"
        assert fs.injected.crashes == 1

    def test_crash_before_any_fsync_loses_everything(self, tmp_path):
        path = tmp_path / "f.txt"
        fs = FaultyFS(StorageFaultPlan(crash_at=2))
        with pytest.raises(SimulatedCrash):
            with fs.open(path, "w") as handle:
                handle.write("volatile\n")
                handle.write("more\n")
        assert path.read_text() == ""

    def test_unfsynced_rename_reverts_on_crash(self, tmp_path):
        src, dst = tmp_path / "f.tmp", tmp_path / "f.txt"
        dst.write_text("old content\n")
        fs = FaultyFS(StorageFaultPlan(crash_at=4))
        with fs.open(src, "w") as handle:
            handle.write("new content\n")
            fs.fsync(handle)
        fs.replace(src, dst)  # directory entry not yet durable
        with pytest.raises(SimulatedCrash):
            fs.fsync_dir(tmp_path)  # crash strikes *before* the fsync
        assert dst.read_text() == "old content\n"

    def test_unfsynced_rename_of_new_file_vanishes_on_crash(self, tmp_path):
        src, dst = tmp_path / "f.tmp", tmp_path / "f.txt"
        fs = FaultyFS(StorageFaultPlan(crash_at=4))
        with fs.open(src, "w") as handle:
            handle.write("content\n")
            fs.fsync(handle)
        fs.replace(src, dst)
        with pytest.raises(SimulatedCrash):
            fs.fsync_dir(tmp_path)
        assert not dst.exists()

    def test_fsynced_rename_survives_crash(self, tmp_path):
        src, dst = tmp_path / "f.tmp", tmp_path / "f.txt"
        dst.write_text("old\n")
        fs = FaultyFS(StorageFaultPlan(crash_at=5))
        with fs.open(src, "w") as handle:
            handle.write("new\n")
            fs.fsync(handle)
        fs.replace(src, dst)
        fs.fsync_dir(tmp_path)
        with pytest.raises(SimulatedCrash):
            fs.fsync_dir(tmp_path)  # some later syscall dies
        assert dst.read_text() == "new\n"

    def test_append_preexisting_bytes_survive_crash(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("existing\n")
        fs = FaultyFS(StorageFaultPlan(crash_at=2))
        with pytest.raises(SimulatedCrash):
            with fs.open(path, "a") as handle:
                handle.write("appended\n")
                handle.write("never\n")
        assert path.read_text() == "existing\n"


class TestInjectedErrors:
    def test_enospc_at_exact_write(self, tmp_path):
        fs = FaultyFS(StorageFaultPlan(enospc_at=1))
        with fs.open(tmp_path / "f.txt", "w") as handle:
            with pytest.raises(OSError, match="no space left"):
                handle.write("data")
        assert fs.injected.enospc == 1

    def test_eio_is_bounded_per_path(self, tmp_path):
        # rate 1.0 would EIO every syscall; the per-path budget caps it.
        fs = FaultyFS(StorageFaultPlan(eio_rate=1.0, max_eio_per_path=2))
        path = tmp_path / "f.txt"
        with fs.open(path, "w") as handle:
            failures = 0
            for __ in range(10):
                try:
                    handle.write("x")
                except OSError:
                    failures += 1
        assert failures == 2
        assert fs.injected.eio == 2

    def test_fsync_lie_keeps_bytes_volatile(self, tmp_path):
        path = tmp_path / "f.txt"
        fs = FaultyFS(StorageFaultPlan(fsync_lie_rate=1.0, crash_at=3))
        with pytest.raises(SimulatedCrash):
            with fs.open(path, "w") as handle:
                handle.write("believed safe\n")
                fs.fsync(handle)  # lies
                handle.write("x")  # crash_at=3 strikes here
        assert path.read_text() == ""
        assert fs.injected.fsync_lies == 1

    def test_torn_write_persists_seeded_prefix_then_crashes(self, tmp_path):
        path = tmp_path / "f.txt"
        fs = FaultyFS(StorageFaultPlan(seed=3, torn_write_at=1))
        payload = "0123456789abcdef\n"
        with pytest.raises(SimulatedCrash):
            with fs.open(path, "w") as handle:
                handle.write(payload)
        survived = path.read_text()
        assert payload.startswith(survived)
        assert len(survived) < len(payload)
        assert fs.injected.torn_writes == 1

    def test_remove_untracks(self, tmp_path):
        path = tmp_path / "f.txt"
        fs = FaultyFS(StorageFaultPlan.none())
        with fs.open(path, "w") as handle:
            handle.write("x")
        fs.remove(path)
        assert not path.exists()
        assert "remove" in fs.trace
