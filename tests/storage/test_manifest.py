"""Tests for integrity sidecar manifests."""

import hashlib
import json
import zlib

import pytest

from repro.errors import StorageError
from repro.storage.manifest import (
    MANIFEST_SUFFIX,
    Manifest,
    build_manifest,
    data_path_for,
    is_manifest,
    load_manifest,
    manifest_path,
    record_crc,
    text_record_crcs,
    verify_file,
    write_manifest,
    write_text_with_manifest,
)


class TestPaths:
    def test_sidecar_naming_round_trip(self, tmp_path):
        data = tmp_path / "corpus.jsonl"
        side = manifest_path(data)
        assert side.name == "corpus.jsonl.manifest.json"
        assert is_manifest(side)
        assert not is_manifest(data)
        assert data_path_for(side) == data

    def test_data_path_for_rejects_non_sidecar(self, tmp_path):
        with pytest.raises(StorageError, match="not a manifest"):
            data_path_for(tmp_path / "corpus.jsonl")


class TestCrcs:
    def test_record_crc_matches_zlib(self):
        line = '{"a": 1}'
        assert record_crc(line) == zlib.crc32(line.encode()) & 0xFFFFFFFF

    def test_text_crcs_match_built_manifest(self, tmp_path):
        text = '{"a": 1}\n{"b": "é"}\n'
        path = tmp_path / "f.jsonl"
        path.write_text(text, encoding="utf-8")
        assert build_manifest(path).record_crcs == text_record_crcs(text)

    def test_torn_tail_counts_as_record(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text('{"a": 1}\n{"torn', encoding="utf-8")
        manifest = build_manifest(path)
        assert manifest.records == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text("")
        manifest = build_manifest(path)
        assert manifest.records == 0
        assert manifest.size_bytes == 0

    def test_non_record_file_has_no_crcs(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"x\ny\nz")
        manifest = build_manifest(path, records=False)
        assert manifest.record_crcs is None
        assert manifest.records is None


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text('{"a": 1}\n')
        manifest = build_manifest(path)
        side = write_manifest(path, manifest)
        assert side.exists()
        assert load_manifest(path) == manifest

    def test_load_absent_returns_none(self, tmp_path):
        assert load_manifest(tmp_path / "nope.jsonl") is None

    def test_unreadable_sidecar_is_corruption_evidence(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text("data\n")
        manifest_path(path).write_text("{broken")
        with pytest.raises(StorageError, match="unreadable manifest"):
            load_manifest(path)

    def test_sidecar_bytes_are_canonical(self, tmp_path):
        # Same content + same name => byte-identical sidecars, so the
        # journal's directory-level byte comparisons stay meaningful.
        paths = []
        for run in ("run_a", "run_b"):
            (tmp_path / run).mkdir()
            path = tmp_path / run / "corpus.jsonl"
            write_text_with_manifest(path, '{"x": 1}\n')
            paths.append(path)
        assert (
            manifest_path(paths[0]).read_bytes()
            == manifest_path(paths[1]).read_bytes()
        )

    def test_from_dict_rejects_bad_crcs(self):
        data = Manifest("f", "00", 1, (1,)).to_dict()
        data["record_crcs"] = "not-a-list"
        with pytest.raises(ValueError):
            Manifest.from_dict(data)


class TestVerify:
    def test_clean_file_verifies_ok(self, tmp_path):
        path = tmp_path / "f.jsonl"
        write_text_with_manifest(path, '{"a": 1}\n{"b": 2}\n')
        result = verify_file(path)
        assert result.ok
        assert result.manifest_records == 2
        assert result.actual_records == 2

    def test_missing_manifest(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text("data\n")
        assert verify_file(path).status == "missing-manifest"

    def test_missing_file(self, tmp_path):
        path = tmp_path / "f.jsonl"
        write_text_with_manifest(path, "data\n")
        path.unlink()
        assert verify_file(path).status == "missing-file"

    def test_mismatch_pinpoints_corrupt_lines(self, tmp_path):
        path = tmp_path / "f.jsonl"
        write_text_with_manifest(path, "aaaa\nbbbb\ncccc\n")
        lines = path.read_bytes().split(b"\n")
        lines[1] = b"bXbb"
        path.write_bytes(b"\n".join(lines))
        result = verify_file(path)
        assert result.status == "mismatch"
        assert result.corrupt_records == (2,)

    def test_write_text_with_manifest_creates_both(self, tmp_path):
        path = tmp_path / "f.jsonl"
        text = '{"a": 1}\n'
        written = write_text_with_manifest(path, text)
        assert written == len(text.encode())
        manifest = load_manifest(path)
        assert manifest is not None
        assert manifest.sha256 == hashlib.sha256(text.encode()).hexdigest()
        assert manifest.records == 1

    def test_manifest_dict_round_trip(self):
        manifest = Manifest("f.jsonl", "ab" * 32, 10, (1, 2, 3))
        clone = Manifest.from_dict(
            json.loads(json.dumps(manifest.to_dict()))
        )
        assert clone == manifest


def test_manifest_suffix_is_stable():
    # The scrub engine, journal resume, and CLI all glob on this.
    assert MANIFEST_SUFFIX == ".manifest.json"
