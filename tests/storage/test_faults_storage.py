"""Tests for the seeded disk-fault plan and the bitrot injector."""

import pytest

from repro.errors import ConfigError
from repro.faults.storage import (
    InjectedStorageFaults,
    SimulatedCrash,
    StorageFaultPlan,
    flip_bits,
)


class TestPlanValidation:
    @pytest.mark.parametrize("field", ["eio_rate", "fsync_lie_rate"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_bounded(self, field, value):
        with pytest.raises(ConfigError):
            StorageFaultPlan(**{field: value})

    @pytest.mark.parametrize(
        "field", ["enospc_at", "torn_write_at", "crash_at"]
    )
    def test_point_faults_non_negative(self, field):
        with pytest.raises(ConfigError):
            StorageFaultPlan(**{field: -1})

    def test_negative_budgets_rejected(self):
        with pytest.raises(ConfigError):
            StorageFaultPlan(max_eio_per_path=-1)
        with pytest.raises(ConfigError):
            StorageFaultPlan(bitrot_flips=-1)

    def test_any_faults(self):
        assert not StorageFaultPlan.none().any_faults
        assert StorageFaultPlan.chaos().any_faults
        assert StorageFaultPlan(crash_at=0).any_faults
        assert StorageFaultPlan(bitrot_flips=1).any_faults

    def test_describe_mentions_active_faults(self):
        text = StorageFaultPlan(seed=9, eio_rate=0.5, crash_at=3).describe()
        assert "seed=9" in text
        assert "eio_rate=0.5" in text
        assert "crash_at=3" in text
        assert "no faults" in StorageFaultPlan.none().describe()


class TestDeterminism:
    def test_eio_decisions_replay(self):
        plan = StorageFaultPlan(seed=4, eio_rate=0.3)
        draws = [plan.transient_eio("write", i) for i in range(200)]
        again = [plan.transient_eio("write", i) for i in range(200)]
        assert draws == again
        assert any(draws) and not all(draws)

    def test_eio_depends_on_operation_and_seed(self):
        plan = StorageFaultPlan(seed=4, eio_rate=0.3)
        other_op = [plan.transient_eio("fsync", i) for i in range(200)]
        other_seed = [
            StorageFaultPlan(seed=5, eio_rate=0.3).transient_eio("write", i)
            for i in range(200)
        ]
        base = [plan.transient_eio("write", i) for i in range(200)]
        assert base != other_op
        assert base != other_seed

    def test_fsync_lie_replays(self):
        plan = StorageFaultPlan(seed=4, fsync_lie_rate=0.5)
        draws = [plan.fsync_lie(i) for i in range(100)]
        assert draws == [plan.fsync_lie(i) for i in range(100)]
        assert any(draws) and not all(draws)

    def test_zero_rates_never_fire(self):
        plan = StorageFaultPlan.none()
        assert not any(plan.transient_eio("write", i) for i in range(50))
        assert not any(plan.fsync_lie(i) for i in range(50))

    def test_negative_index_rejected(self):
        plan = StorageFaultPlan(eio_rate=0.5, fsync_lie_rate=0.5)
        with pytest.raises(ConfigError):
            plan.transient_eio("write", -1)
        with pytest.raises(ConfigError):
            plan.fsync_lie(-1)

    def test_torn_length_is_strict_prefix(self):
        plan = StorageFaultPlan(seed=11)
        for length in (1, 2, 64, 1000):
            keep = plan.torn_length(3, length)
            assert 0 <= keep < length
            assert keep == plan.torn_length(3, length)
        assert plan.torn_length(3, 0) == 0


class TestSimulatedCrash:
    def test_is_not_an_exception(self):
        # `except Exception` recovery code must not swallow power loss.
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, Exception)


class TestFlipBits:
    def test_deterministic_and_reported(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        content = b'{"r": 0}\n{"r": 1}\n{"r": 2}\n'
        a.write_bytes(content)
        b.write_bytes(content)
        offsets_a = flip_bits(str(a), seed=7, flips=3)
        offsets_b = flip_bits(str(b), seed=7, flips=3)
        assert offsets_a == offsets_b
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != content
        assert len(offsets_a) == 3
        assert offsets_a == tuple(sorted(offsets_a))

    def test_preserves_record_framing(self, tmp_path):
        path = tmp_path / "f.jsonl"
        content = b'{"r": 0}\n{"r": 1}\n{"r": 2}\n'
        path.write_bytes(content)
        flip_bits(str(path), seed=1, flips=8)
        damaged = path.read_bytes()
        assert damaged.count(b"\n") == content.count(b"\n")
        assert len(damaged) == len(content)

    def test_zero_flips_noop(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_bytes(b"data\n")
        assert flip_bits(str(path), seed=1, flips=0) == ()
        assert path.read_bytes() == b"data\n"

    def test_negative_flips_rejected(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_bytes(b"data\n")
        with pytest.raises(ConfigError):
            flip_bits(str(path), seed=1, flips=-1)

    def test_small_file_caps_flips(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_bytes(b"ab\n")
        offsets = flip_bits(str(path), seed=1, flips=50)
        assert len(offsets) <= 2  # newline byte is never touched


def test_injected_counters_render():
    injected = InjectedStorageFaults(eio=2, crashes=1)
    lines = injected.summary_lines()
    assert any("transient EIO" in line and "2" in line for line in lines)
    assert any("crash" in line for line in lines)
