"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CharacterizationError,
    ClusteringError,
    ConfigError,
    DatasetError,
    EmptyGroupError,
    GeoError,
    PipelineError,
    ReproError,
    SerializationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        ConfigError, PipelineError, DatasetError, SerializationError,
        CharacterizationError, EmptyGroupError, ClusteringError, GeoError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        if exc_type is EmptyGroupError:
            instance = exc_type("group")
        else:
            instance = exc_type("boom")
        assert isinstance(instance, ReproError)

    def test_serialization_is_dataset_error(self):
        assert issubclass(SerializationError, DatasetError)

    def test_empty_group_is_characterization_error(self):
        assert issubclass(EmptyGroupError, CharacterizationError)

    def test_empty_group_carries_group(self):
        error = EmptyGroupError("lung")
        assert error.group == "lung"
        assert "lung" in str(error)

    def test_catching_base_at_boundary(self):
        """The integration-boundary pattern: one except clause."""
        with pytest.raises(ReproError):
            raise PipelineError("stage failed")
