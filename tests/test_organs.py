"""Tests for the organ entity set."""

import pytest

from repro.organs import (
    ALIASES,
    N_ORGANS,
    ORGAN_NAMES,
    ORGANS,
    Organ,
    UnknownOrganError,
    organ_indices,
)


class TestOrganSet:
    def test_six_organs(self):
        assert N_ORGANS == 6
        assert len(ORGANS) == 6

    def test_canonical_order_matches_paper_popularity(self):
        # The column order is the paper's Fig. 2a popularity order.
        assert ORGAN_NAMES == (
            "heart", "kidney", "liver", "lung", "pancreas", "intestine",
        )

    def test_index_roundtrip(self):
        for position, organ in enumerate(ORGANS):
            assert organ.index == position
            assert ORGANS[organ.index] is organ

    def test_organs_are_unique(self):
        assert len(set(ORGANS)) == 6

    def test_str_is_value(self):
        assert str(Organ.KIDNEY) == "kidney"


class TestAliases:
    def test_every_canonical_name_is_an_alias(self):
        for organ in ORGANS:
            assert ALIASES[organ.value] is organ

    @pytest.mark.parametrize(
        "alias,organ",
        [
            ("kidneys", Organ.KIDNEY),
            ("renal", Organ.KIDNEY),
            ("cardiac", Organ.HEART),
            ("hepatic", Organ.LIVER),
            ("pulmonary", Organ.LUNG),
            ("pancreatic", Organ.PANCREAS),
            ("bowel", Organ.INTESTINE),
        ],
    )
    def test_medical_aliases(self, alias, organ):
        assert ALIASES[alias] is organ

    def test_aliases_are_lowercase_single_tokens(self):
        for alias in ALIASES:
            assert alias == alias.lower()
            assert " " not in alias


class TestFromName:
    def test_resolves_canonical(self):
        assert Organ.from_name("liver") is Organ.LIVER

    def test_resolves_with_whitespace_and_case(self):
        assert Organ.from_name("  KiDnEy ") is Organ.KIDNEY

    def test_resolves_alias(self):
        assert Organ.from_name("lungs") is Organ.LUNG

    def test_unknown_raises(self):
        with pytest.raises(UnknownOrganError) as excinfo:
            Organ.from_name("spleen")
        assert "spleen" in str(excinfo.value)

    def test_unknown_error_is_keyerror(self):
        with pytest.raises(KeyError):
            Organ.from_name("cornea")


def test_organ_indices_preserves_order():
    assert organ_indices([Organ.LUNG, Organ.HEART]) == [3, 0]


def test_organ_indices_empty():
    assert organ_indices([]) == []
