"""Brownout ladder and coarse summaries."""

from __future__ import annotations

import pytest

from repro.dataset.corpus import TweetCorpus
from repro.errors import ConfigError
from repro.serve.degrade import (
    MAX_BROWNOUT_LEVEL,
    BrownoutLadder,
    BrownoutPolicy,
    CoarseSummaries,
)
from tests.serve.conftest import SERVE_STATES, build_serve_corpus

POLICY = BrownoutPolicy(
    level1_depth=4, level2_depth=8, sustain_ticks=2, recover_ticks=3
)


class TestBrownoutPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"level1_depth": 0},
            {"level1_depth": 8, "level2_depth": 8},
            {"sustain_ticks": 0},
            {"recover_ticks": 0},
        ],
    )
    def test_rejects_degenerate_policy(self, kwargs):
        with pytest.raises(ConfigError):
            BrownoutPolicy(**kwargs)


class TestBrownoutLadder:
    def test_starts_fresh(self):
        assert BrownoutLadder(POLICY).level == 0

    def test_single_burst_does_not_brown_out(self):
        ladder = BrownoutLadder(POLICY)
        assert ladder.observe(10) == 0  # one hot tick < sustain_ticks
        assert ladder.observe(0) == 0

    def test_sustained_pressure_steps_up_one_level_at_a_time(self):
        ladder = BrownoutLadder(POLICY)
        ladder.observe(10)
        assert ladder.observe(10) == 1  # sustain_ticks=2 → level 1
        ladder.observe(10)
        assert ladder.observe(10) == 2  # two more hot ticks → level 2
        assert ladder.max_level_seen == MAX_BROWNOUT_LEVEL

    def test_recovery_is_slower_than_escalation(self):
        ladder = BrownoutLadder(POLICY)
        for _ in range(2):
            ladder.observe(5)
        assert ladder.level == 1
        ladder.observe(0)
        ladder.observe(0)
        assert ladder.level == 1  # recover_ticks=3 not yet reached
        assert ladder.observe(0) == 0

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigError):
            BrownoutLadder(POLICY).observe(-1)

    def test_level_sequence_is_deterministic(self):
        depths = [0, 5, 5, 9, 9, 9, 0, 0, 0, 0, 0, 0, 5, 0]
        runs = []
        for _ in range(2):
            ladder = BrownoutLadder(POLICY)
            runs.append(tuple(ladder.observe(d) for d in depths))
        assert runs[0] == runs[1]


class TestCoarseSummaries:
    @pytest.fixture(scope="class")
    def coarse(self) -> CoarseSummaries:
        return CoarseSummaries.from_corpus(TweetCorpus(build_serve_corpus()))

    def test_counts_located_users(self, coarse):
        assert coarse.total_users == 12
        assert coarse.states == tuple(sorted(SERVE_STATES))
        assert sum(coarse.users_by_state.values()) == 12

    def test_state_signature_levels(self, coarse):
        state = coarse.states[0]
        level1 = coarse.state_signature(state, level=1)
        assert level1["found"] is True
        assert level1["organ_users"]
        level2 = coarse.state_signature(state, level=2)
        assert "organ_users" not in level2
        assert coarse.state_signature("Atlantis", 1) == {
            "state": "Atlantis", "found": False,
        }

    def test_top_organs_ranked_by_user_count(self, coarse):
        state = coarse.states[0]
        counts = coarse.organ_users_by_state[state]
        ranked = coarse.top_organs_by_state[state]
        assert all(
            counts[a] >= counts[b] for a, b in zip(ranked, ranked[1:])
        )

    def test_relative_risk_levels(self, coarse):
        state = coarse.states[0]
        assert coarse.relative_risk(state, 1)["top_organs"]
        assert "top_organs" not in coarse.relative_risk(state, 2)
        assert coarse.relative_risk("Atlantis", 1)["found"] is False

    def test_cluster_profile_levels(self, coarse):
        assert coarse.cluster_profile(1) == {"n_users": 12, "n_states": 4}
        assert coarse.cluster_profile(2) == {"n_users": 12}
