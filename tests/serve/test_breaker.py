"""Circuit breaker: trip, fail fast, probe, recover — deterministically."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.breaker import (
    BreakerPolicy,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)

FAST_TRIP = BreakerPolicy(
    failure_threshold=2, cooldown_seconds=1.0, probe_successes=2,
    probe_jitter=0.0,
)


def tripped(policy: BreakerPolicy = FAST_TRIP) -> CircuitBreaker:
    breaker = CircuitBreaker(policy)
    for _ in range(policy.failure_threshold):
        breaker.record_failure(0.0)
    assert breaker.state is BreakerState.OPEN
    return breaker


class TestBreakerPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_seconds": 0.0},
            {"probe_successes": 0},
            {"probe_jitter": -0.1},
            {"probe_jitter": 1.0},
        ],
    )
    def test_rejects_degenerate_policy(self, kwargs):
        with pytest.raises(ConfigError):
            BreakerPolicy(**kwargs)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker(FAST_TRIP)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(FAST_TRIP)
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.1)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(FAST_TRIP)
        breaker.record_failure(0.0)
        breaker.record_success(0.1)
        breaker.record_failure(0.2)
        assert breaker.state is BreakerState.CLOSED

    def test_open_refuses_instantly_until_cooldown(self):
        breaker = tripped()
        assert not breaker.allow(0.5)
        assert breaker.state is BreakerState.OPEN

    def test_cooldown_elapse_enters_half_open(self):
        breaker = tripped()
        assert breaker.allow(1.0)  # cooldown_seconds=1.0, jitter 0
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_successes_close(self):
        breaker = tripped()
        assert breaker.allow(1.0)
        breaker.record_success(1.1)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(1.2)
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        breaker = tripped()
        assert breaker.allow(1.0)
        breaker.record_failure(1.1)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2

    def test_transitions_recorded_in_order(self):
        breaker = tripped()
        breaker.allow(1.0)
        breaker.record_success(1.1)
        breaker.record_success(1.2)
        assert [t.to_state for t in breaker.transitions] == [
            "open", "half_open", "closed",
        ]
        assert [t.reason for t in breaker.transitions] == [
            "failure_threshold", "cooldown_elapsed", "probe_successes",
        ]

    def test_jittered_probe_schedule_is_seed_deterministic(self):
        policy = BreakerPolicy(
            failure_threshold=1, cooldown_seconds=1.0, probe_jitter=0.5,
            seed=9,
        )
        probes = []
        for _ in range(2):
            breaker = CircuitBreaker(policy)
            breaker.record_failure(0.0)
            # Find the first time the breaker re-admits, to 1ms grid.
            probes.append(
                next(
                    t / 1000.0
                    for t in range(5000)
                    if breaker.allow(t / 1000.0)
                )
            )
        assert probes[0] == probes[1]
        assert 1.0 <= probes[0] <= 1.5

    def test_transition_round_trips_through_dict(self):
        transition = BreakerTransition(
            at=1.5, from_state="closed", to_state="open",
            reason="failure_threshold",
        )
        assert (
            BreakerTransition.from_dict(transition.to_dict()) == transition
        )
