"""Serve-layer fixtures: one tiny on-disk run directory per session.

The corpus is hand-built (12 users, 4 states, every organ represented)
rather than synthesized through the pipeline: serve tests construct many
:class:`repro.serve.QueryService` instances, and each fresh instance
recomputes artifacts on first load, so the corpus must be small enough
that a clustering load costs milliseconds.
"""

from __future__ import annotations

from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.dataset.io import write_jsonl
from repro.dataset.records import CollectedTweet
from repro.geo.geocoder import GeoMatch
from repro.organs import ORGANS
from repro.twitter.models import Tweet, UserProfile

SERVE_STATES = ("California", "New York", "Ohio", "Texas")


def build_serve_corpus() -> list[CollectedTweet]:
    """12 located users × 3 tweets, deterministic organ coverage."""
    records = []
    tweet_id = 1
    for user_id in range(1, 13):
        state = SERVE_STATES[user_id % len(SERVE_STATES)]
        for offset in range(3):
            organ = ORGANS[(user_id + offset) % len(ORGANS)]
            records.append(
                CollectedTweet(
                    tweet=Tweet(
                        tweet_id=tweet_id,
                        user=UserProfile(
                            user_id=user_id, screen_name=f"u{user_id}"
                        ),
                        text="t",
                        created_at=datetime(2015, 6, 1, tzinfo=timezone.utc),
                    ),
                    location=GeoMatch("US", state, 0.95, "test"),
                    mentions={organ: 1 + (offset % 2)},
                )
            )
            tweet_id += 1
    return records


@pytest.fixture(scope="session")
def serve_run_dir(tmp_path_factory: pytest.TempPathFactory) -> Path:
    run_dir = tmp_path_factory.mktemp("serve_run")
    write_jsonl(build_serve_corpus(), run_dir / "corpus.jsonl")
    return run_dir
