"""The query service end to end: happy path, overload, chaos, accounting."""

from __future__ import annotations

import json

from repro.faults.load import LoadFaultPlan
from repro.serve.admission import AdmissionPolicy
from repro.serve.breaker import BreakerPolicy
from repro.serve.degrade import BrownoutPolicy
from repro.serve.service import (
    Outcome,
    QueryRequest,
    QueryService,
    ServicePolicy,
    read_requests_jsonl,
    write_responses_jsonl,
)


def request(
    request_id: str,
    kind: str = "state_signature",
    arrival: float = 0.0,
    state: str | None = "California",
    **kwargs,
) -> QueryRequest:
    params = (("state", state),) if state is not None else ()
    if kind == "cluster_profile":
        params = (("cluster", "0"),)
    if kind == "health":
        params = ()
    return QueryRequest(
        request_id=request_id, kind=kind, arrival=arrival, params=params,
        **kwargs,
    )


class TestRequestParsing:
    def test_parses_valid_lines(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            json.dumps(
                {
                    "id": "r1",
                    "kind": "state_signature",
                    "arrival": 0.5,
                    "params": {"state": "Ohio"},
                    "deadline": 1.5,
                }
            )
            + "\n\n"  # blank lines are not requests
        )
        requests, malformed = read_requests_jsonl(path)
        assert malformed == ()
        [req] = requests
        assert req.request_id == "r1"
        assert req.arrival == 0.5
        assert req.deadline == 1.5
        assert req.param("state") == "Ohio"
        assert req.param("missing") is None

    def test_malformed_lines_become_dead_letter_stubs(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            "\n".join(
                [
                    "not json at all",
                    json.dumps({"kind": "health"}),  # missing id
                    json.dumps({"id": "r", "kind": "health", "arrival": -1}),
                    json.dumps(
                        {"id": "r", "kind": "health", "deadline": 0}
                    ),
                    json.dumps({"id": "ok", "kind": "health"}),
                ]
            )
        )
        requests, malformed = read_requests_jsonl(path)
        assert [req.request_id for req in requests] == ["ok"]
        assert malformed == (
            ("line-1", "malformed_json"),
            ("line-2", "malformed_request"),
            ("line-3", "malformed_request"),
            ("line-4", "malformed_request"),
        )


class TestHappyPath:
    def test_all_kinds_complete_fresh(self, serve_run_dir):
        service = QueryService(serve_run_dir)
        requests = [
            request("r-sig", "state_signature", 0.0),
            request("r-rr", "relative_risk", 1.0),
            request("r-cl", "cluster_profile", 2.0),
            request("r-h", "health", 3.0),
        ]
        result = service.serve(requests)
        assert result.report.accounted
        assert result.report.completed == 4
        assert result.report.degraded == 0
        by_id = {r.request_id: r for r in result.responses}
        assert by_id["r-sig"].payload["found"] is True
        assert by_id["r-sig"].payload["signature"]
        assert by_id["r-rr"].payload["found"] is True
        assert by_id["r-cl"].payload["k"] == 6
        assert by_id["r-h"].payload["status"] == "ok"
        assert all(r.status == "ok" for r in result.responses)

    def test_unknown_state_completes_not_found(self, serve_run_dir):
        service = QueryService(serve_run_dir)
        result = service.serve([request("r", state="Atlantis")])
        [response] = result.responses
        assert response.outcome is Outcome.COMPLETED
        assert response.payload == {"state": "Atlantis", "found": False}

    def test_artifacts_cached_across_requests(self, serve_run_dir):
        service = QueryService(serve_run_dir)
        result = service.serve(
            [request(f"r{i}", arrival=i * 1.0) for i in range(3)]
        )
        assert result.report.completed == 3
        # One load (cost 0.25) plus three signature stages — the second
        # and third requests must not pay the load again.
        finished = [r.finished_at for r in result.responses]
        assert finished[1] - 1.0 < service.policy.artifact_load_cost

    def test_responses_file_is_manifested_and_deterministic(
        self, serve_run_dir, tmp_path
    ):
        outputs = []
        for run in range(2):
            service = QueryService(serve_run_dir)
            result = service.serve(
                [request(f"r{i}", arrival=i * 0.1) for i in range(5)]
            )
            path = tmp_path / f"responses{run}.jsonl"
            count = write_responses_jsonl(result.responses, path)
            assert count == 5
            outputs.append(path.read_bytes())
        assert outputs[0] == outputs[1]
        assert (tmp_path / "responses0.jsonl.manifest.json").exists()


class TestDeadlines:
    def test_tiny_budget_expires_without_partial_payload(self, serve_run_dir):
        service = QueryService(serve_run_dir)
        result = service.serve([request("r", deadline=0.01)])
        [response] = result.responses
        assert response.outcome is Outcome.EXPIRED
        assert response.status == "deadline_exceeded"
        assert response.payload is None
        assert result.report.expired == 1
        assert result.report.accounted

    def test_queue_wait_spends_the_budget(self, serve_run_dir):
        service = QueryService(serve_run_dir)
        # All arrive at once; the first pays the artifact load (0.25s),
        # so the rest are already dead at dequeue.
        result = service.serve(
            [request(f"r{i}", deadline=0.1) for i in range(4)]
        )
        statuses = sorted(r.status for r in result.responses)
        assert statuses.count("expired_in_queue") >= 2
        assert result.report.accounted


class TestDeadLetters:
    def test_unknown_kind(self, serve_run_dir):
        service = QueryService(serve_run_dir)
        result = service.serve(
            [QueryRequest(request_id="r", kind="nonsense", arrival=0.0)]
        )
        [response] = result.responses
        assert response.outcome is Outcome.DEAD_LETTERED
        assert response.status == "unknown_kind"

    def test_missing_required_param(self, serve_run_dir):
        service = QueryService(serve_run_dir)
        result = service.serve(
            [QueryRequest(request_id="r", kind="state_signature", arrival=0.0)]
        )
        [response] = result.responses
        assert response.outcome is Outcome.DEAD_LETTERED
        assert response.status == "handler_error:QueryError"

    def test_poison_request(self, serve_run_dir):
        service = QueryService(serve_run_dir)
        result = service.serve(
            [
                QueryRequest(
                    request_id="r", kind="health", arrival=0.0, poison=True
                )
            ]
        )
        [response] = result.responses
        assert response.outcome is Outcome.DEAD_LETTERED
        assert response.status == "poison_query"
        assert result.report.accounted


class TestBreakerIntegration:
    def test_failing_loads_degrade_instead_of_hanging(self, serve_run_dir):
        plan = LoadFaultPlan(
            seed=0, load_error_rate=1.0, max_faulted_loads=1000
        )
        policy = ServicePolicy(breaker=BreakerPolicy(failure_threshold=2))
        service = QueryService(serve_run_dir, policy=policy, plan=plan)
        requests = [request(f"r{i}", arrival=i * 0.5) for i in range(8)]
        result = service.serve(requests)
        assert result.report.accounted
        # Every request still gets an answer — the coarse one.
        assert result.report.completed == 8
        assert result.report.degraded == 8
        assert all(r.status == "degraded" for r in result.responses)
        assert result.report.breaker_opens >= 1
        assert result.report.breaker_transitions

    def test_open_breaker_answers_within_deadline(self, serve_run_dir):
        plan = LoadFaultPlan(
            seed=0, load_error_rate=1.0, max_faulted_loads=1000
        )
        policy = ServicePolicy(breaker=BreakerPolicy(failure_threshold=1))
        service = QueryService(serve_run_dir, policy=policy, plan=plan)
        budget = 2.0
        requests = [
            request(f"r{i}", arrival=i * 1.0, deadline=budget)
            for i in range(6)
        ]
        result = service.serve(requests)
        for response in result.responses:
            assert response.outcome is Outcome.COMPLETED
            arrival = float(response.request_id[1:]) * 1.0
            assert response.finished_at < arrival + budget


class TestOverloadBehaviour:
    def test_floods_shed_explicitly_never_silently(self, serve_run_dir):
        policy = ServicePolicy(
            admission=AdmissionPolicy(
                queue_limit=4, bucket_capacity=8.0, refill_per_second=1.0
            )
        )
        service = QueryService(serve_run_dir, policy=policy)
        requests = [
            request(f"r{i}", "health" if i % 5 == 0 else "state_signature")
            for i in range(50)
        ]
        result = service.serve(requests)
        assert result.report.accounted
        assert result.report.shed > 0
        assert (
            result.report.shed
            == result.report.shed_queue_full
            + result.report.shed_rate_limited
        )
        rejected = [
            r for r in result.responses if r.outcome is Outcome.REJECTED
        ]
        assert all(
            r.status in ("queue_full", "rate_limited") for r in rejected
        )

    def test_health_is_never_shed(self, serve_run_dir):
        policy = ServicePolicy(
            admission=AdmissionPolicy(
                queue_limit=1, bucket_capacity=1.0, refill_per_second=0.5
            )
        )
        service = QueryService(serve_run_dir, policy=policy)
        requests = [
            request(f"n{i}", "state_signature") for i in range(30)
        ] + [request(f"h{i}", "health") for i in range(10)]
        result = service.serve(requests)
        health = [
            r for r in result.responses if r.request_id.startswith("h")
        ]
        assert len(health) == 10
        assert all(r.outcome is not Outcome.REJECTED for r in health)

    def test_sustained_pressure_browns_out_before_more_shedding(
        self, serve_run_dir
    ):
        policy = ServicePolicy(
            brownout=BrownoutPolicy(
                level1_depth=3, level2_depth=10, sustain_ticks=2,
                recover_ticks=3,
            )
        )
        service = QueryService(serve_run_dir, policy=policy)
        requests = [request(f"r{i}") for i in range(20)]
        result = service.serve(requests)
        assert result.report.max_brownout_level >= 1
        assert result.report.degraded > 0
        assert result.report.accounted


class TestStorms:
    def test_storm_clones_are_submitted_and_accounted(self, serve_run_dir):
        plan = LoadFaultPlan(seed=3, storm_rate=1.0, storm_burst_cap=4)
        service = QueryService(serve_run_dir, plan=plan)
        requests = [request(f"r{i}", arrival=i * 0.2) for i in range(5)]
        result = service.serve(requests)
        assert result.report.submitted > 5
        assert result.report.accounted
        assert any("~storm" in r.request_id for r in result.responses)

    def test_malformed_stubs_count_against_accounting(self, serve_run_dir):
        service = QueryService(serve_run_dir)
        result = service.serve(
            [request("r0")], malformed=(("line-9", "malformed_json"),)
        )
        assert result.report.submitted == 2
        assert result.report.dead_lettered == 1
        assert result.report.accounted
