"""OverloadReport: the serving layer's HealthReport implementor."""

from __future__ import annotations

from repro.health import HealthReport
from repro.serve.breaker import BreakerTransition
from repro.serve.report import OverloadReport


def sample_report() -> OverloadReport:
    return OverloadReport(
        submitted=10,
        admitted=8,
        completed=6,
        shed=2,
        shed_queue_full=1,
        shed_rate_limited=1,
        expired=1,
        dead_lettered=1,
        degraded=3,
        max_brownout_level=2,
        breaker_opens=1,
        breaker_transitions=[
            BreakerTransition(
                at=1.0, from_state="closed", to_state="open",
                reason="failure_threshold",
            )
        ],
    )


class TestOverloadReport:
    def test_implements_health_report_protocol(self):
        assert isinstance(OverloadReport(), HealthReport)

    def test_accounting_exact(self):
        assert sample_report().accounted
        assert OverloadReport().accounted  # vacuously: 0 == 0

    def test_accounting_detects_loss(self):
        report = sample_report()
        report.completed -= 1  # one response silently vanished
        assert not report.accounted

    def test_rows_and_lines_agree(self):
        report = sample_report()
        rows = report.as_rows()
        assert ("requests submitted", "10") in rows
        assert ("accounting", "exact") in rows
        assert report.summary_lines() == [
            f"{label}: {value}" for label, value in rows
        ]

    def test_broken_accounting_is_loud(self):
        report = sample_report()
        report.completed -= 1
        assert ("accounting", "BROKEN") in report.as_rows()

    def test_round_trips_through_dict(self):
        report = sample_report()
        back = OverloadReport.from_dict(report.to_dict())
        assert back == report
