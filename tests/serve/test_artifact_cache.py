"""Tests for the generation-keyed artifact cache."""

from __future__ import annotations

import pytest

from repro.dataset.io import write_jsonl
from repro.serve.artifacts import ArtifactCache, corpus_generation
from repro.serve.service import QueryRequest, QueryService
from tests.serve.conftest import build_serve_corpus


def request(request_id: str, arrival: float = 0.0) -> QueryRequest:
    return QueryRequest(
        request_id=request_id,
        kind="state_signature",
        arrival=arrival,
        params=(("state", "Ohio"),),
    )


class TestArtifactCache:
    def test_builds_once_then_hits(self):
        cache = ArtifactCache()
        calls = []

        def builder():
            calls.append(1)
            return {"built": True}

        first = cache.get(("gen", "corpus"), builder)
        second = cache.get(("gen", "corpus"), builder)
        assert first is second
        assert len(calls) == 1
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_distinct_keys_do_not_alias(self):
        cache = ArtifactCache()
        a = cache.get(("gen-a", "corpus"), lambda: "a")
        b = cache.get(("gen-b", "corpus"), lambda: "b")
        k11 = cache.get(("gen-a", "clustering", 11), lambda: "k11")
        k12 = cache.get(("gen-a", "clustering", 12), lambda: "k12")
        assert (a, b, k11, k12) == ("a", "b", "k11", "k12")
        assert len(cache) == 4

    def test_failing_builder_caches_nothing(self):
        cache = ArtifactCache()

        def explode():
            raise RuntimeError("load failed")

        with pytest.raises(RuntimeError):
            cache.get(("gen", "corpus"), explode)
        assert len(cache) == 0
        # The next caller retries and can succeed.
        assert cache.get(("gen", "corpus"), lambda: "ok") == "ok"
        assert cache.misses == 1

    def test_evict_generation(self):
        cache = ArtifactCache()
        cache.get(("old", "corpus"), lambda: 1)
        cache.get(("old", "regions"), lambda: 2)
        cache.get(("new", "corpus"), lambda: 3)
        assert cache.evict_generation("old") == 2
        assert len(cache) == 1
        assert cache.get(("new", "corpus"), lambda: 99) == 3


class TestCorpusGeneration:
    def test_prefers_manifest_sha256(self, serve_run_dir):
        from repro.storage.manifest import load_manifest

        manifest = load_manifest(serve_run_dir / "corpus.jsonl")
        assert manifest is not None
        assert corpus_generation(serve_run_dir) == manifest.sha256

    def test_falls_back_to_file_hash_without_manifest(self, tmp_path):
        write_jsonl(
            build_serve_corpus(), tmp_path / "corpus.jsonl", manifest=False
        )
        generation = corpus_generation(tmp_path)
        assert len(generation) == 64
        assert generation == corpus_generation(tmp_path)

    def test_changes_when_corpus_changes(self, tmp_path):
        corpus = build_serve_corpus()
        write_jsonl(corpus, tmp_path / "corpus.jsonl")
        before = corpus_generation(tmp_path)
        write_jsonl(corpus[:20], tmp_path / "corpus.jsonl")
        assert corpus_generation(tmp_path) != before

    def test_missing_corpus_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            corpus_generation(tmp_path)


class TestSharedCacheService:
    def test_shared_cache_preserves_responses_exactly(self, serve_run_dir):
        requests = [request(f"r{i}", arrival=i * 0.5) for i in range(4)]

        private = QueryService(serve_run_dir)
        baseline = private.serve([*requests])

        shared = ArtifactCache()
        cold = QueryService(serve_run_dir, cache=shared)
        warm = QueryService(serve_run_dir, cache=shared)
        cold_result = cold.serve([*requests])
        warm_result = warm.serve([*requests])

        # The cache only skips builder work — responses, timing, and
        # accounting are identical cold, warm, or private.
        assert cold_result.responses == baseline.responses
        assert warm_result.responses == baseline.responses
        assert (
            warm_result.report.to_dict() == baseline.report.to_dict()
        )

    def test_warm_service_skips_builder_work(self, serve_run_dir):
        shared = ArtifactCache()
        cold = QueryService(serve_run_dir, cache=shared)
        cold.serve([request("r0")])
        misses_after_cold = shared.misses

        warm = QueryService(serve_run_dir, cache=shared)
        warm.serve([request("r1")])
        # Startup (coarse + corpus) and the signature path were all
        # cache hits for the warm service: no new builder runs.
        assert shared.misses == misses_after_cold
        assert shared.hits > 0

    def test_store_still_pays_loads_when_cache_warm(self, serve_run_dir):
        shared = ArtifactCache()
        cold = QueryService(serve_run_dir, cache=shared)
        cold_result = cold.serve([request("r0")])
        warm = QueryService(serve_run_dir, cache=shared)
        warm_result = warm.serve([request("r0")])
        # The simulated load cost is charged identically — the paid
        # artifact_loads count does not change with cache temperature.
        assert (
            warm_result.report.artifact_loads
            == cold_result.report.artifact_loads
            > 0
        )

    def test_report_counts_loads_and_amortizes(self, serve_run_dir):
        service = QueryService(serve_run_dir)
        result = service.serve(
            [request(f"r{i}", arrival=i * 0.5) for i in range(8)]
        )
        assert result.report.artifact_loads == service.store.loads
        # The per-service artifact memo amortizes: far fewer paid loads
        # than requests.
        assert result.report.artifact_loads < result.report.submitted
