"""Deadline budgets: fixed at arrival, spent by every stage."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.deadline import Deadline, DeadlineExceeded


class TestDeadline:
    def test_fixed_at_arrival_plus_budget(self):
        deadline = Deadline.from_budget(arrival=2.0, budget=1.5)
        assert deadline.expires_at == 3.5

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_non_positive_budget_is_config_error(self, budget):
        with pytest.raises(ConfigError):
            Deadline.from_budget(arrival=0.0, budget=budget)

    def test_remaining_counts_down_and_goes_negative(self):
        deadline = Deadline.from_budget(arrival=0.0, budget=1.0)
        assert deadline.remaining(0.25) == 0.75
        assert deadline.remaining(1.5) == -0.5

    def test_expired_at_exact_expiry(self):
        deadline = Deadline.from_budget(arrival=0.0, budget=1.0)
        assert not deadline.expired(0.999)
        assert deadline.expired(1.0)

    def test_check_raises_only_once_spent(self):
        deadline = Deadline.from_budget(arrival=1.0, budget=1.0)
        deadline.check(1.9)
        with pytest.raises(DeadlineExceeded):
            deadline.check(2.0)
