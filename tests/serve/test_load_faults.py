"""Seeded load-chaos plan: storms, poison, slow and failing loads."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults.load import LoadFault, LoadFaultPlan


class TestLoadFaultPlanConfig:
    def test_none_has_no_faults(self):
        plan = LoadFaultPlan.none(seed=5)
        assert not plan.any_faults
        assert plan.seed == 5

    def test_chaos_has_faults(self):
        plan = LoadFaultPlan.chaos(seed=5)
        assert plan.any_faults
        assert "seed=5" in plan.describe()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"storm_rate": -0.1},
            {"storm_rate": 1.1},
            {"poison_rate": 2.0},
            {"slow_load_rate": -1.0},
            {"load_error_rate": 1.5},
            {"storm_burst_cap": 0},
            {"storm_spread": -0.5},
            {"slow_load_seconds": -1.0},
            {"max_faulted_loads": -1},
        ],
    )
    def test_rejects_degenerate_plans(self, kwargs):
        with pytest.raises(ConfigError):
            LoadFaultPlan(**kwargs)


class TestStorms:
    def test_no_storms_without_rate(self):
        plan = LoadFaultPlan.none()
        assert all(plan.storm_for(i) == () for i in range(50))

    def test_storms_are_seed_deterministic(self):
        a = LoadFaultPlan.chaos(seed=11)
        b = LoadFaultPlan.chaos(seed=11)
        assert [a.storm_for(i) for i in range(100)] == [
            b.storm_for(i) for i in range(100)
        ]

    def test_different_seeds_differ(self):
        a = LoadFaultPlan.chaos(seed=1)
        b = LoadFaultPlan.chaos(seed=2)
        assert [a.storm_for(i) for i in range(100)] != [
            b.storm_for(i) for i in range(100)
        ]

    def test_burst_size_capped_and_offsets_bounded(self):
        plan = LoadFaultPlan(
            seed=3, storm_rate=1.0, storm_burst_cap=5, storm_spread=0.25
        )
        for i in range(100):
            clones = plan.storm_for(i)
            assert 1 <= len(clones) <= 5
            for clone in clones:
                assert 0.0 <= clone.offset <= 0.25

    def test_poison_only_with_poison_rate(self):
        clean = LoadFaultPlan(seed=3, storm_rate=1.0)
        assert not any(
            clone.poison for i in range(100) for clone in clean.storm_for(i)
        )
        poisonous = LoadFaultPlan(seed=3, storm_rate=1.0, poison_rate=1.0)
        assert all(
            clone.poison
            for i in range(100)
            for clone in poisonous.storm_for(i)
        )


class TestLoadFaults:
    def test_deterministic_per_artifact_and_index(self):
        a = LoadFaultPlan.chaos(seed=7)
        b = LoadFaultPlan.chaos(seed=7)
        draws_a = [
            a.fault_for_load(name, i)
            for name in ("corpus", "regions")
            for i in range(20)
        ]
        draws_b = [
            b.fault_for_load(name, i)
            for name in ("corpus", "regions")
            for i in range(20)
        ]
        assert draws_a == draws_b

    def test_clean_past_max_faulted_loads(self):
        plan = LoadFaultPlan(seed=0, load_error_rate=1.0, max_faulted_loads=3)
        assert all(
            plan.fault_for_load("corpus", i) is LoadFault.ERROR
            for i in range(3)
        )
        assert all(
            plan.fault_for_load("corpus", i) is None for i in range(3, 10)
        )

    def test_error_rate_one_always_errors_within_budget(self):
        plan = LoadFaultPlan(seed=0, load_error_rate=1.0)
        assert plan.fault_for_load("clustering", 0) is LoadFault.ERROR

    def test_slow_rate_one_always_slow(self):
        plan = LoadFaultPlan(seed=0, slow_load_rate=1.0)
        assert plan.fault_for_load("clustering", 0) is LoadFault.SLOW
