"""Admission control: bucket, bound, priorities, explicit shedding."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.admission import (
    AdmissionPolicy,
    AdmissionQueue,
    Rejected,
    RequestClass,
    TokenBucket,
)


class TestAdmissionPolicy:
    def test_defaults_valid(self):
        AdmissionPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_limit": 0},
            {"bucket_capacity": 0.0},
            {"bucket_capacity": -1.0},
            {"refill_per_second": 0.0},
        ],
    )
    def test_rejects_degenerate_limits(self, kwargs):
        with pytest.raises(ConfigError):
            AdmissionPolicy(**kwargs)


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(capacity=4.0, refill_per_second=1.0)
        assert bucket.tokens(0.0) == 4.0

    def test_burst_then_starves(self):
        bucket = TokenBucket(capacity=2.0, refill_per_second=1.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_lazily(self):
        bucket = TokenBucket(capacity=1.0, refill_per_second=2.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(0.5)  # 0.5s × 2/s = 1 token back

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(capacity=3.0, refill_per_second=10.0)
        assert bucket.tokens(100.0) == 3.0

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(capacity=2.0, refill_per_second=1.0)
        assert bucket.try_take(5.0)
        # An earlier-timestamped offer must not refill retroactively.
        assert bucket.tokens(1.0) <= bucket.tokens(5.0)

    def test_deterministic_sequence(self):
        takes = []
        for _ in range(2):
            bucket = TokenBucket(capacity=2.0, refill_per_second=4.0)
            takes.append(
                tuple(bucket.try_take(i * 0.1) for i in range(20))
            )
        assert takes[0] == takes[1]

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ConfigError):
            TokenBucket(capacity=0.0, refill_per_second=1.0)
        with pytest.raises(ConfigError):
            TokenBucket(capacity=1.0, refill_per_second=0.0)


class TestAdmissionQueue:
    def _queue(self, **kwargs) -> AdmissionQueue[str]:
        policy = AdmissionPolicy(
            queue_limit=kwargs.pop("queue_limit", 2),
            bucket_capacity=kwargs.pop("bucket_capacity", 100.0),
            refill_per_second=kwargs.pop("refill_per_second", 100.0),
        )
        return AdmissionQueue(policy)

    def test_admits_until_full_then_sheds_explicitly(self):
        queue = self._queue(queue_limit=2)
        assert queue.offer("a", RequestClass.NORMAL, now=0.0) is None
        assert queue.offer("b", RequestClass.NORMAL, now=0.0) is None
        rejected = queue.offer("c", RequestClass.NORMAL, now=0.0)
        assert rejected == Rejected(reason="queue_full")
        assert queue.depth == 2

    def test_rate_limit_sheds_with_reason(self):
        queue = AdmissionQueue(
            AdmissionPolicy(
                queue_limit=100, bucket_capacity=1.0, refill_per_second=1.0
            )
        )
        assert queue.offer("a", RequestClass.NORMAL, now=0.0) is None
        rejected = queue.offer("b", RequestClass.NORMAL, now=0.0)
        assert rejected == Rejected(reason="rate_limited")

    def test_critical_bypasses_bucket_and_bound(self):
        queue = AdmissionQueue(
            AdmissionPolicy(
                queue_limit=1, bucket_capacity=1.0, refill_per_second=1.0
            )
        )
        assert queue.offer("n", RequestClass.NORMAL, now=0.0) is None
        # Bucket and queue are both exhausted; health still gets in.
        for i in range(10):
            assert (
                queue.offer(f"h{i}", RequestClass.CRITICAL, now=0.0) is None
            )
        assert queue.depth == 11

    def test_pop_serves_critical_first_fifo_within_class(self):
        queue = self._queue(queue_limit=10)
        queue.offer("n1", RequestClass.NORMAL, now=0.0)
        queue.offer("c1", RequestClass.CRITICAL, now=0.0)
        queue.offer("n2", RequestClass.NORMAL, now=0.0)
        queue.offer("c2", RequestClass.CRITICAL, now=0.0)
        assert [queue.pop() for _ in range(4)] == ["c1", "c2", "n1", "n2"]
        assert queue.pop() is None

    def test_len_matches_depth(self):
        queue = self._queue()
        queue.offer("a", RequestClass.NORMAL, now=0.0)
        assert len(queue) == queue.depth == 1
