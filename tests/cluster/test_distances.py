"""Tests for distribution distances."""

import math

import numpy as np
import pytest

from repro.cluster.distances import (
    bhattacharyya_coefficient,
    bhattacharyya_distance,
    euclidean_distance,
    hellinger_distance,
    pairwise_distances,
)
from repro.errors import ClusteringError


def dist(*values):
    array = np.array(values, dtype=float)
    return array / array.sum()


class TestBhattacharyya:
    def test_identical_distributions_zero(self):
        p = dist(1, 2, 3)
        assert bhattacharyya_distance(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_coefficient_of_identical_is_one(self):
        p = dist(4, 1, 1)
        assert bhattacharyya_coefficient(p, p) == pytest.approx(1.0)

    def test_symmetry(self):
        p, q = dist(1, 2, 3), dist(3, 1, 1)
        assert bhattacharyya_distance(p, q) == pytest.approx(
            bhattacharyya_distance(q, p)
        )

    def test_disjoint_supports_large_but_finite(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        value = bhattacharyya_distance(p, q)
        assert value > 10
        assert math.isfinite(value)

    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.9, 0.1])
        coefficient = math.sqrt(0.45) + math.sqrt(0.05)
        assert bhattacharyya_distance(p, q) == pytest.approx(
            -math.log(coefficient)
        )

    def test_more_different_means_larger(self):
        p = dist(1, 1, 1)
        near = dist(1.2, 1, 0.8)
        far = dist(5, 1, 0.1)
        assert bhattacharyya_distance(p, near) < bhattacharyya_distance(p, far)

    def test_negative_input_rejected(self):
        with pytest.raises(ClusteringError):
            bhattacharyya_distance(np.array([-0.5, 1.5]), dist(1, 1))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ClusteringError):
            bhattacharyya_distance(dist(1, 1), dist(1, 1, 1))


class TestHellinger:
    def test_bounded(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert hellinger_distance(p, q) == pytest.approx(1.0)

    def test_identity(self):
        p = dist(2, 3, 5)
        assert hellinger_distance(p, p) == pytest.approx(0.0, abs=1e-8)

    def test_relation_to_bhattacharyya_coefficient(self):
        p, q = dist(1, 3), dist(2, 1)
        coefficient = bhattacharyya_coefficient(p, q)
        assert hellinger_distance(p, q) == pytest.approx(
            math.sqrt(1 - coefficient)
        )

    def test_triangle_inequality_sampled(self):
        rng = np.random.default_rng(0)
        for __ in range(50):
            p, q, r = (rng.dirichlet(np.ones(4)) for __ in range(3))
            assert hellinger_distance(p, r) <= (
                hellinger_distance(p, q) + hellinger_distance(q, r) + 1e-12
            )


class TestEuclidean:
    def test_known(self):
        assert euclidean_distance(
            np.array([0.0, 0.0]), np.array([3.0, 4.0])
        ) == pytest.approx(5.0)


class TestPairwise:
    def test_matches_scalar_function(self):
        rng = np.random.default_rng(1)
        rows = rng.dirichlet(np.ones(6), size=10)
        for metric, scalar in [
            ("bhattacharyya", bhattacharyya_distance),
            ("hellinger", hellinger_distance),
            ("euclidean", euclidean_distance),
        ]:
            matrix = pairwise_distances(rows, metric)
            for i in range(10):
                for j in range(10):
                    assert matrix[i, j] == pytest.approx(
                        scalar(rows[i], rows[j]), abs=1e-7
                    ), (metric, i, j)

    def test_zero_diagonal(self):
        rows = np.random.default_rng(2).dirichlet(np.ones(4), size=5)
        for metric in ("bhattacharyya", "hellinger", "euclidean"):
            assert np.allclose(np.diag(pairwise_distances(rows, metric)), 0.0)

    def test_symmetric(self):
        rows = np.random.default_rng(3).dirichlet(np.ones(4), size=7)
        matrix = pairwise_distances(rows)
        assert np.allclose(matrix, matrix.T)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ClusteringError, match="cosine"):
            pairwise_distances(np.ones((2, 2)), "cosine")

    def test_non_2d_rejected(self):
        with pytest.raises(ClusteringError):
            pairwise_distances(np.ones(3))
