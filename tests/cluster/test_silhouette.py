"""Tests for the silhouette coefficient."""

import numpy as np
import pytest

from repro.cluster.silhouette import silhouette_samples, silhouette_score
from repro.errors import ClusteringError


def blobs(separation: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    a = rng.normal(scale=0.2, size=(40, 2))
    b = rng.normal(scale=0.2, size=(40, 2)) + [separation, 0]
    rows = np.vstack([a, b])
    labels = np.repeat([0, 1], 40)
    return rows, labels


class TestSilhouetteValues:
    def test_range(self):
        rows, labels = blobs(3.0)
        samples = silhouette_samples(rows, labels)
        assert np.all(samples >= -1.0)
        assert np.all(samples <= 1.0)

    def test_well_separated_near_one(self):
        rows, labels = blobs(50.0)
        assert silhouette_score(rows, labels) > 0.95

    def test_overlapping_near_zero(self):
        rows, labels = blobs(0.01, seed=1)
        assert abs(silhouette_score(rows, labels)) < 0.3

    def test_wrong_labels_negative(self):
        rows, labels = blobs(50.0)
        shuffled = labels.copy()
        rng = np.random.default_rng(2)
        rng.shuffle(shuffled)
        assert silhouette_score(rows, shuffled) < silhouette_score(rows, labels)

    def test_separation_monotonicity(self):
        scores = [
            silhouette_score(*blobs(separation, seed=3))
            for separation in (0.5, 2.0, 10.0)
        ]
        assert scores == sorted(scores)

    def test_singleton_cluster_scores_zero(self):
        rows = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        labels = np.array([0, 0, 1])
        samples = silhouette_samples(rows, labels)
        assert samples[2] == 0.0


class TestAgainstManualComputation:
    def test_tiny_example(self):
        rows = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        samples = silhouette_samples(rows, labels)
        # Point 0: a = 1, b = mean(10, 11) = 10.5 → s = (10.5-1)/10.5.
        assert samples[0] == pytest.approx((10.5 - 1) / 10.5)
        # Point 2: a = 1, b = mean(10, 9) = 9.5 → s = 8.5/9.5.
        assert samples[2] == pytest.approx(8.5 / 9.5)


class TestSubsampling:
    def test_subsample_close_to_full(self):
        rows, labels = blobs(10.0, seed=4)
        full = silhouette_score(rows, labels)
        sampled = silhouette_score(rows, labels, sample_size=40, seed=0)
        assert sampled == pytest.approx(full, abs=0.1)

    def test_subsample_deterministic(self):
        rows, labels = blobs(5.0)
        a = silhouette_score(rows, labels, sample_size=30, seed=9)
        b = silhouette_score(rows, labels, sample_size=30, seed=9)
        assert a == b

    def test_sample_size_larger_than_data_ignored(self):
        rows, labels = blobs(5.0)
        assert silhouette_score(rows, labels, sample_size=10_000) == (
            silhouette_score(rows, labels)
        )

    def test_tiny_sample_size_rejected(self):
        rows, labels = blobs(5.0)
        with pytest.raises(ClusteringError):
            silhouette_score(rows, labels, sample_size=1)


class TestValidation:
    def test_single_cluster_rejected(self):
        rows = np.ones((5, 2))
        with pytest.raises(ClusteringError):
            silhouette_samples(rows, np.zeros(5, dtype=int))

    def test_label_shape_mismatch(self):
        with pytest.raises(ClusteringError):
            silhouette_samples(np.ones((5, 2)), np.zeros(4, dtype=int))
