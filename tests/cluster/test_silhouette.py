"""Tests for the silhouette coefficient."""

import numpy as np
import pytest

from repro.cluster.silhouette import (
    chunk_rows,
    silhouette_samples,
    silhouette_score,
)
from repro.errors import ClusteringError


def blobs(separation: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    a = rng.normal(scale=0.2, size=(40, 2))
    b = rng.normal(scale=0.2, size=(40, 2)) + [separation, 0]
    rows = np.vstack([a, b])
    labels = np.repeat([0, 1], 40)
    return rows, labels


class TestSilhouetteValues:
    def test_range(self):
        rows, labels = blobs(3.0)
        samples = silhouette_samples(rows, labels)
        assert np.all(samples >= -1.0)
        assert np.all(samples <= 1.0)

    def test_well_separated_near_one(self):
        rows, labels = blobs(50.0)
        assert silhouette_score(rows, labels) > 0.95

    def test_overlapping_near_zero(self):
        rows, labels = blobs(0.01, seed=1)
        assert abs(silhouette_score(rows, labels)) < 0.3

    def test_wrong_labels_negative(self):
        rows, labels = blobs(50.0)
        shuffled = labels.copy()
        rng = np.random.default_rng(2)
        rng.shuffle(shuffled)
        assert silhouette_score(rows, shuffled) < silhouette_score(rows, labels)

    def test_separation_monotonicity(self):
        scores = [
            silhouette_score(*blobs(separation, seed=3))
            for separation in (0.5, 2.0, 10.0)
        ]
        assert scores == sorted(scores)

    def test_singleton_cluster_scores_zero(self):
        rows = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        labels = np.array([0, 0, 1])
        samples = silhouette_samples(rows, labels)
        assert samples[2] == 0.0


class TestAgainstManualComputation:
    def test_tiny_example(self):
        rows = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        samples = silhouette_samples(rows, labels)
        # Point 0: a = 1, b = mean(10, 11) = 10.5 → s = (10.5-1)/10.5.
        assert samples[0] == pytest.approx((10.5 - 1) / 10.5)
        # Point 2: a = 1, b = mean(10, 9) = 9.5 → s = 8.5/9.5.
        assert samples[2] == pytest.approx(8.5 / 9.5)


class TestSubsampling:
    def test_subsample_close_to_full(self):
        rows, labels = blobs(10.0, seed=4)
        full = silhouette_score(rows, labels)
        sampled = silhouette_score(rows, labels, sample_size=40, seed=0)
        assert sampled == pytest.approx(full, abs=0.1)

    def test_subsample_deterministic(self):
        rows, labels = blobs(5.0)
        a = silhouette_score(rows, labels, sample_size=30, seed=9)
        b = silhouette_score(rows, labels, sample_size=30, seed=9)
        assert a == b

    def test_sample_size_larger_than_data_ignored(self):
        rows, labels = blobs(5.0)
        assert silhouette_score(rows, labels, sample_size=10_000) == (
            silhouette_score(rows, labels)
        )

    def test_tiny_sample_size_rejected(self):
        rows, labels = blobs(5.0)
        with pytest.raises(ClusteringError):
            silhouette_score(rows, labels, sample_size=1)


class TestChunkedEvaluation:
    """The chunked (bounded-memory) path must match the direct one."""

    @staticmethod
    def direct_samples(rows: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Reference implementation via the full m×m distance matrix."""
        m = rows.shape[0]
        diff = rows[:, None, :] - rows[None, :, :]
        dist = np.sqrt((diff ** 2).sum(axis=2))
        unique = np.unique(labels)
        out = np.empty(m)
        for i in range(m):
            own = labels[i]
            mates = (labels == own) & (np.arange(m) != i)
            if not mates.any():
                out[i] = 0.0
                continue
            a = dist[i, mates].mean()
            b = min(
                dist[i, labels == other].mean()
                for other in unique
                if other != own
            )
            denom = max(a, b)
            out[i] = 0.0 if denom == 0.0 else (b - a) / denom
        return out

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_direct_computation(self, seed):
        rng = np.random.default_rng(seed)
        rows = rng.normal(size=(90, 3))
        labels = rng.integers(0, 4, size=90)
        expected = self.direct_samples(rows, labels)
        got = silhouette_samples(rows, labels)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_budget_independent(self):
        """Any memory budget gives the same silhouette values."""
        rows, labels = blobs(3.0, seed=5)
        reference = silhouette_samples(rows, labels)
        for budget_mb in (1e-5, 1e-4, 1e-3, 256.0):
            chunked = silhouette_samples(
                rows, labels, memory_budget_mb=budget_mb
            )
            np.testing.assert_allclose(chunked, reference, atol=1e-12)

    def test_tiny_budget_degrades_to_row_at_a_time(self):
        assert chunk_rows(80, 1e-9) == 1

    def test_chunk_rows_within_budget(self):
        m = 72_000
        budget_mb = 256.0
        rows_per_block = chunk_rows(m, budget_mb)
        block_bytes = rows_per_block * m * 8
        assert 0 < block_bytes <= budget_mb * 1024 * 1024
        # The full m×m matrix would be ~41 GB; the block must be far
        # smaller, which is the whole point of chunking.
        assert rows_per_block < m

    def test_invalid_budget_rejected(self):
        rows, labels = blobs(3.0)
        with pytest.raises(ClusteringError):
            silhouette_samples(rows, labels, memory_budget_mb=0.0)


class TestValidation:
    def test_single_cluster_rejected(self):
        rows = np.ones((5, 2))
        with pytest.raises(ClusteringError):
            silhouette_samples(rows, np.zeros(5, dtype=int))

    def test_label_shape_mismatch(self):
        with pytest.raises(ClusteringError):
            silhouette_samples(np.ones((5, 2)), np.zeros(4, dtype=int))
