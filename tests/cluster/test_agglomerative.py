"""Tests for agglomerative clustering, cross-checked against SciPy."""

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
from scipy.spatial.distance import squareform

from repro.cluster.agglomerative import AgglomerativeClustering, Dendrogram, MergeStep
from repro.errors import ClusteringError


def toy_distances() -> np.ndarray:
    # Two tight pairs far apart: {0,1} and {2,3}.
    return np.array([
        [0.0, 1.0, 9.0, 9.5],
        [1.0, 0.0, 8.5, 9.0],
        [9.0, 8.5, 0.0, 0.5],
        [9.5, 9.0, 0.5, 0.0],
    ])


class TestBasicStructure:
    def test_merge_count(self):
        tree = AgglomerativeClustering().fit(toy_distances())
        assert len(tree.merges) == 3

    def test_first_merges_are_tight_pairs(self):
        tree = AgglomerativeClustering().fit(toy_distances())
        first, second = tree.merges[0], tree.merges[1]
        assert {first.left, first.right} == {2, 3}
        assert {second.left, second.right} == {0, 1}

    def test_heights_non_decreasing_average_linkage(self):
        rng = np.random.default_rng(0)
        points = rng.random((15, 3))
        from repro.cluster.distances import pairwise_distances

        tree = AgglomerativeClustering("average").fit(
            pairwise_distances(points, "euclidean")
        )
        heights = [merge.height for merge in tree.merges]
        assert heights == sorted(heights)

    def test_cut_two_clusters(self):
        tree = AgglomerativeClustering().fit(toy_distances())
        labels = tree.cut(2)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_cut_one_cluster(self):
        tree = AgglomerativeClustering().fit(toy_distances())
        assert set(tree.cut(1).tolist()) == {0}

    def test_cut_m_clusters_all_singletons(self):
        tree = AgglomerativeClustering().fit(toy_distances())
        assert len(set(tree.cut(4).tolist())) == 4

    def test_cut_out_of_range(self):
        tree = AgglomerativeClustering().fit(toy_distances())
        with pytest.raises(ClusteringError):
            tree.cut(0)
        with pytest.raises(ClusteringError):
            tree.cut(5)

    def test_leaf_order_is_permutation(self):
        tree = AgglomerativeClustering().fit(toy_distances())
        assert sorted(tree.leaf_order()) == [0, 1, 2, 3]

    def test_leaf_order_keeps_pairs_adjacent(self):
        order = AgglomerativeClustering().fit(toy_distances()).leaf_order()
        assert abs(order.index(0) - order.index(1)) == 1
        assert abs(order.index(2) - order.index(3)) == 1


class TestAgainstScipy:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_merge_heights_match_scipy(self, linkage):
        rng = np.random.default_rng(1)
        points = rng.random((20, 4))
        from repro.cluster.distances import pairwise_distances

        distances = pairwise_distances(points, "euclidean")
        ours = AgglomerativeClustering(linkage).fit(distances)
        theirs = sch.linkage(squareform(distances, checks=False), method=linkage)
        np.testing.assert_allclose(
            [merge.height for merge in ours.merges], theirs[:, 2], atol=1e-9
        )

    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_flat_cuts_match_scipy(self, linkage):
        rng = np.random.default_rng(2)
        points = rng.random((18, 3))
        from repro.cluster.distances import pairwise_distances

        distances = pairwise_distances(points, "euclidean")
        ours = AgglomerativeClustering(linkage).fit(distances)
        theirs = sch.linkage(squareform(distances, checks=False), method=linkage)
        for n_clusters in (2, 3, 5):
            our_labels = ours.cut(n_clusters)
            their_labels = sch.fcluster(theirs, n_clusters, criterion="maxclust")
            # Same partition up to label permutation.
            assert _same_partition(our_labels, their_labels)


def _same_partition(a, b) -> bool:
    mapping: dict[int, int] = {}
    reverse: dict[int, int] = {}
    for x, y in zip(a.tolist(), list(b)):
        if mapping.setdefault(x, y) != y:
            return False
        if reverse.setdefault(y, x) != x:
            return False
    return True


class TestValidation:
    def test_asymmetric_rejected(self):
        bad = toy_distances()
        bad[0, 1] = 5.0
        with pytest.raises(ClusteringError):
            AgglomerativeClustering().fit(bad)

    def test_nonzero_diagonal_rejected(self):
        bad = toy_distances()
        np.fill_diagonal(bad, 1.0)
        with pytest.raises(ClusteringError):
            AgglomerativeClustering().fit(bad)

    def test_non_square_rejected(self):
        with pytest.raises(ClusteringError):
            AgglomerativeClustering().fit(np.zeros((3, 4)))

    def test_single_item_rejected(self):
        with pytest.raises(ClusteringError):
            AgglomerativeClustering().fit(np.zeros((1, 1)))

    def test_unknown_linkage_rejected(self):
        with pytest.raises(ClusteringError):
            AgglomerativeClustering("ward")

    def test_dendrogram_merge_count_validated(self):
        with pytest.raises(ClusteringError):
            Dendrogram(n_leaves=3, merges=[MergeStep(0, 1, 1.0, 2)])

    def test_fit_predict_shortcut(self):
        labels = AgglomerativeClustering().fit_predict(toy_distances(), 2)
        assert len(set(labels.tolist())) == 2
