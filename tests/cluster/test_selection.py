"""Tests for k-selection utilities."""

import pytest

from repro.cluster.selection import elbow_k, select_k
from repro.errors import ClusteringError


class TestElbowK:
    def test_clean_elbow(self):
        # Sharp drop until k=4, flat after.
        ks = (2, 3, 4, 5, 6, 7)
        inertias = (100.0, 60.0, 20.0, 18.0, 17.0, 16.5)
        assert elbow_k(ks, inertias) == 4

    def test_linear_curve_interior(self):
        # Perfectly linear: gap is ~0 everywhere; any k acceptable but
        # must not crash; argmax picks a deterministic point.
        ks = (1, 2, 3, 4)
        inertias = (40.0, 30.0, 20.0, 10.0)
        assert elbow_k(ks, inertias) in ks

    def test_flat_inertia_returns_smallest_k(self):
        assert elbow_k((2, 3, 4), (5.0, 5.0, 5.0)) == 2

    def test_rising_inertia_returns_smallest_k(self):
        assert elbow_k((2, 3, 4), (5.0, 6.0, 7.0)) == 2

    def test_too_few_points_rejected(self):
        with pytest.raises(ClusteringError):
            elbow_k((2, 3), (10.0, 5.0))

    def test_misaligned_rejected(self):
        with pytest.raises(ClusteringError):
            elbow_k((2, 3, 4), (10.0, 5.0))

    def test_unsorted_ks_rejected(self):
        with pytest.raises(ClusteringError):
            elbow_k((4, 2, 3), (1.0, 3.0, 2.0))


class TestSelectK:
    KS = (6, 9, 12, 15, 18)
    INERTIAS = (500.0, 200.0, 80.0, 70.0, 65.0)

    def test_prefers_near_elbow_candidate(self):
        selection = select_k(
            self.KS,
            self.INERTIAS,
            silhouettes=(0.90, 0.92, 0.95, 0.94, 0.93),
            avg_sizes=(1000.0, 800.0, 600.0, 480.0, 400.0),
        )
        assert selection.elbow == 12
        assert selection.k == 12
        assert 12 in selection.candidates

    def test_floors_filter_candidates(self):
        selection = select_k(
            self.KS,
            self.INERTIAS,
            silhouettes=(0.95, 0.95, 0.80, 0.80, 0.80),  # only 6, 9 pass
            avg_sizes=(1000.0,) * 5,
        )
        assert selection.candidates == (6, 9)
        assert selection.k == 9  # nearest to elbow 12

    def test_size_floor(self):
        selection = select_k(
            self.KS,
            self.INERTIAS,
            silhouettes=(0.95,) * 5,
            avg_sizes=(500.0, 300.0, 150.0, 90.0, 60.0),
            min_avg_size=100.0,
        )
        assert selection.candidates == (6, 9, 12)

    def test_fallback_when_nothing_passes(self):
        selection = select_k(
            self.KS,
            self.INERTIAS,
            silhouettes=(0.5, 0.6, 0.7, 0.65, 0.6),
            avg_sizes=(10.0,) * 5,
        )
        assert selection.candidates == ()
        assert selection.k == 12  # best silhouette
        assert "floors" in selection.reason

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ClusteringError):
            select_k((6, 9), (1.0,), (0.9, 0.9), (10.0, 10.0))

    def test_paper_scenario_selects_twelve(self, midsize_suite):
        """On the real sweep, the explicit rule lands on a k near the
        paper's 12 (the curve is shallow, so 9–15 are all defensible)."""
        from repro.config import UserClusteringConfig
        from repro.core.user_clusters import sweep_k

        sweep = sweep_k(
            midsize_suite.attention,
            ks=(6, 9, 12, 15),
            config=UserClusteringConfig(n_init=2, seed=0),
        )
        selection = select_k(
            sweep.ks, sweep.inertias, sweep.silhouettes, sweep.avg_sizes,
            min_avg_size=50.0,
        )
        assert selection.k in (9, 12, 15)
