"""Tests for K-Means."""

import numpy as np
import pytest

from repro.cluster.kmeans import KMeans
from repro.errors import ClusteringError


def three_blobs(n_per: int = 50, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.vstack([
        center + rng.normal(scale=0.3, size=(n_per, 2)) for center in centers
    ])
    labels = np.repeat(np.arange(3), n_per)
    return points, labels


class TestClusteringQuality:
    def test_recovers_well_separated_blobs(self):
        points, truth = three_blobs()
        result = KMeans(k=3, seed=1).fit(points)
        # Labels are a permutation of truth: each true blob maps to one
        # predicted cluster.
        for blob in range(3):
            predicted = result.labels[truth == blob]
            assert len(set(predicted.tolist())) == 1

    def test_centers_near_blob_means(self):
        points, __ = three_blobs()
        result = KMeans(k=3, seed=1).fit(points)
        expected = {(0, 0), (10, 0), (0, 10)}
        found = {tuple(np.round(center).astype(int)) for center in result.centers}
        assert found == expected

    def test_inertia_positive_and_small_for_tight_blobs(self):
        points, __ = three_blobs()
        result = KMeans(k=3, seed=1).fit(points)
        assert 0 < result.inertia < 100

    def test_inertia_decreases_with_k(self):
        points, __ = three_blobs()
        inertias = [
            KMeans(k=k, n_init=4, seed=0).fit(points).inertia
            for k in (1, 2, 3, 6)
        ]
        assert inertias == sorted(inertias, reverse=True)

    def test_k_equals_one(self):
        points, __ = three_blobs()
        result = KMeans(k=1, seed=0).fit(points)
        assert set(result.labels.tolist()) == {0}
        np.testing.assert_allclose(result.centers[0], points.mean(axis=0))

    def test_k_equals_m_zero_inertia(self):
        points = np.arange(10, dtype=float).reshape(5, 2)
        result = KMeans(k=5, seed=0).fit(points)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)


class TestDeterminismAndRestarts:
    def test_deterministic_given_seed(self):
        points, __ = three_blobs()
        a = KMeans(k=3, seed=42).fit(points)
        b = KMeans(k=3, seed=42).fit(points)
        assert np.array_equal(a.labels, b.labels)
        assert a.inertia == b.inertia

    def test_more_restarts_never_worse(self):
        rng = np.random.default_rng(7)
        points = rng.random((200, 4))
        one = KMeans(k=8, n_init=1, seed=3).fit(points)
        many = KMeans(k=8, n_init=10, seed=3).fit(points)
        assert many.inertia <= one.inertia + 1e-9

    def test_parallel_restarts_match_serial(self):
        """The winning fit is identical for any worker count."""
        rng = np.random.default_rng(11)
        points = rng.random((120, 4))
        serial = KMeans(k=6, n_init=8, seed=3, workers=1).fit(points)
        for workers in (2, 4):
            parallel = KMeans(k=6, n_init=8, seed=3, workers=workers).fit(points)
            assert np.array_equal(serial.labels, parallel.labels)
            np.testing.assert_array_equal(serial.centers, parallel.centers)
            assert serial.inertia == parallel.inertia
            assert serial.n_iter == parallel.n_iter

    def test_invalid_workers_rejected(self):
        with pytest.raises(ClusteringError):
            KMeans(k=2, workers=0)


class TestEmptyClusterReseeding:
    def test_simultaneous_empty_clusters_get_distinct_centers(self):
        """Regression: two clusters emptied in the same Lloyd iteration
        used to be re-seeded at the *same* worst-fit row, collapsing to
        duplicate centers and effectively fewer than k clusters."""
        rng = np.random.default_rng(0)
        # Four tight blobs, far apart, so each deserves its own center.
        blobs = np.array([[0.0, 0.0], [40.0, 0.0], [0.0, 40.0], [40.0, 40.0]])
        points = np.vstack([
            blob + rng.normal(scale=0.05, size=(25, 2)) for blob in blobs
        ])
        model = KMeans(k=4, n_init=1, max_iter=100, seed=0)
        # Force the degenerate start: all k centers identical, so k−1
        # clusters are empty in the very first iteration.
        model._init_centers = lambda matrix, rng: np.tile(points[0], (4, 1))
        result = model.fit(points)
        distinct = {tuple(np.round(center, 6)) for center in result.centers}
        assert len(distinct) == 4
        assert (result.cluster_sizes() > 0).all()

    def test_reseeded_fit_still_usable(self):
        """After reseeding, the fit must be a genuine k-way partition —
        every cluster populated and strictly better than a single-cluster
        fit (reseeding repairs degenerate starts; it does not promise the
        global optimum)."""
        rng = np.random.default_rng(1)
        blobs = np.array([[0.0, 0.0], [40.0, 0.0], [0.0, 40.0]])
        points = np.vstack([
            blob + rng.normal(scale=0.05, size=(30, 2)) for blob in blobs
        ])
        model = KMeans(k=3, n_init=1, max_iter=100, seed=0)
        model._init_centers = lambda matrix, rng: np.tile(points[0], (3, 1))
        result = model.fit(points)
        assert (result.cluster_sizes() > 0).all()
        assert len({tuple(np.round(c, 6)) for c in result.centers}) == 3
        baseline = KMeans(k=1, seed=0).fit(points).inertia
        assert result.inertia < baseline


class TestEdgeCases:
    def test_k_larger_than_m_rejected(self):
        with pytest.raises(ClusteringError):
            KMeans(k=10).fit(np.ones((3, 2)))

    def test_invalid_k_rejected(self):
        with pytest.raises(ClusteringError):
            KMeans(k=0)

    def test_1d_input_rejected(self):
        with pytest.raises(ClusteringError):
            KMeans(k=2).fit(np.ones(5))

    def test_duplicate_points(self):
        points = np.ones((20, 3))
        result = KMeans(k=2, seed=0).fit(points)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_every_cluster_nonempty_on_separable_data(self):
        points, __ = three_blobs()
        result = KMeans(k=3, seed=5).fit(points)
        assert (result.cluster_sizes() > 0).all()

    def test_labels_in_range(self):
        points, __ = three_blobs()
        result = KMeans(k=3, seed=5).fit(points)
        assert result.labels.min() >= 0
        assert result.labels.max() < 3

    def test_cluster_sizes_sum_to_m(self):
        points, __ = three_blobs()
        result = KMeans(k=3, seed=5).fit(points)
        assert result.cluster_sizes().sum() == points.shape[0]
