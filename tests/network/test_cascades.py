"""Tests for cascades, influence estimation, and interventions."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.network.cascades import simulate_cascade
from repro.network.graph import GraphConfig, build_follower_graph
from repro.network.influence import (
    estimate_influence,
    greedy_influence_maximization,
)
from repro.network.intervention import CampaignStrategy, run_campaign
from repro.organs import Organ
from repro.synth.config import PopulationConfig, SynthConfig
from repro.synth.world import SyntheticWorld


@pytest.fixture(scope="module")
def graph():
    world = SyntheticWorld(
        SynthConfig(population=PopulationConfig(n_users=1500,
                                                us_fraction=0.6), seed=4)
    )
    return build_follower_graph(world, GraphConfig(seed=2))


class TestSimulateCascade:
    def test_seeds_always_activated(self, graph):
        seeds = graph.top_audiences(3)
        cascade = simulate_cascade(
            graph, seeds, Organ.KIDNEY, np.random.default_rng(0)
        )
        assert set(seeds) <= cascade.activated

    def test_empty_seeds_rejected(self, graph):
        with pytest.raises(ConfigError):
            simulate_cascade(graph, [], Organ.HEART, np.random.default_rng(0))

    def test_bad_probability_rejected(self, graph):
        with pytest.raises(ConfigError):
            simulate_cascade(
                graph, [0], Organ.HEART, np.random.default_rng(0),
                base_probability=0.0,
            )

    def test_zero_audience_seed_reaches_only_itself_mostly(self, graph):
        loner = min(graph.graph.nodes, key=graph.audience_size)
        cascade = simulate_cascade(
            graph, [loner], Organ.HEART, np.random.default_rng(1)
        )
        assert cascade.size == 1
        assert cascade.depth == 0

    def test_higher_probability_larger_cascades(self, graph):
        seeds = graph.top_audiences(3)
        small = np.mean([
            simulate_cascade(graph, seeds, Organ.HEART,
                             np.random.default_rng(i), 0.02).size
            for i in range(10)
        ])
        large = np.mean([
            simulate_cascade(graph, seeds, Organ.HEART,
                             np.random.default_rng(i), 0.3).size
            for i in range(10)
        ])
        assert large > small

    def test_attention_gates_spread(self, graph):
        """A message spreads further among its own interest community:
        kidney content seeded at kidney-focal hubs outperforms intestine
        content from the same seeds."""
        kidney_hubs = sorted(
            graph.users_with_focal(Organ.KIDNEY),
            key=lambda u: -graph.audience_size(u),
        )[:5]
        kidney_reach = np.mean([
            simulate_cascade(graph, kidney_hubs, Organ.KIDNEY,
                             np.random.default_rng(i)).size
            for i in range(15)
        ])
        intestine_reach = np.mean([
            simulate_cascade(graph, kidney_hubs, Organ.INTESTINE,
                             np.random.default_rng(i)).size
            for i in range(15)
        ])
        assert kidney_reach > intestine_reach


class TestEstimateInfluence:
    def test_fields(self, graph):
        estimate = estimate_influence(
            graph, graph.top_audiences(2), Organ.HEART, n_simulations=5
        )
        assert estimate.mean_reach >= 2
        assert estimate.n_simulations == 5
        assert 0.0 <= estimate.alignment <= 1.0

    def test_deterministic_per_seed(self, graph):
        seeds = graph.top_audiences(2)
        a = estimate_influence(graph, seeds, Organ.HEART, 5, seed=3)
        b = estimate_influence(graph, seeds, Organ.HEART, 5, seed=3)
        assert a.mean_reach == b.mean_reach

    def test_more_seeds_never_fewer(self, graph):
        one = estimate_influence(
            graph, graph.top_audiences(1), Organ.HEART, 10, seed=1
        )
        five = estimate_influence(
            graph, graph.top_audiences(5), Organ.HEART, 10, seed=1
        )
        assert five.mean_reach >= one.mean_reach

    def test_invalid_simulations(self, graph):
        with pytest.raises(ConfigError):
            estimate_influence(graph, [0], Organ.HEART, n_simulations=0)


class TestGreedy:
    def test_selects_budget_seeds(self, graph):
        estimate = greedy_influence_maximization(
            graph, budget=3, organ=Organ.HEART,
            candidates=graph.top_audiences(8), n_simulations=5,
        )
        assert len(estimate.seeds) == 3
        assert len(set(estimate.seeds)) == 3

    def test_beats_random_seeds(self, graph):
        greedy = greedy_influence_maximization(
            graph, budget=3, organ=Organ.HEART,
            candidates=graph.top_audiences(8), n_simulations=8,
        )
        rng = np.random.default_rng(5)
        random_seeds = [int(u) for u in rng.choice(
            list(graph.graph.nodes), size=3, replace=False
        )]
        random_estimate = estimate_influence(
            graph, random_seeds, Organ.HEART, 8
        )
        assert greedy.mean_reach > random_estimate.mean_reach

    def test_budget_exceeding_candidates_rejected(self, graph):
        with pytest.raises(ConfigError):
            greedy_influence_maximization(
                graph, budget=5, organ=Organ.HEART, candidates=[1, 2],
            )


class TestCampaigns:
    def test_all_strategies_run(self, graph):
        for strategy in (
            CampaignStrategy.RANDOM,
            CampaignStrategy.TOP_FOLLOWERS,
            CampaignStrategy.SEGMENT,
        ):
            outcome = run_campaign(
                graph, strategy, Organ.KIDNEY, budget=5, n_simulations=5,
            )
            assert len(outcome.seeds) == 5
            assert outcome.mean_reach >= 5

    def test_receptive_states_strategy(self, graph):
        outcome = run_campaign(
            graph, CampaignStrategy.RECEPTIVE_STATES, Organ.KIDNEY,
            budget=3, receptive_states=("CA", "TX", "NY"), n_simulations=5,
        )
        states = {graph.state_of(seed) for seed in outcome.seeds}
        assert states <= {"CA", "TX", "NY"}

    def test_receptive_states_requires_states(self, graph):
        with pytest.raises(ConfigError):
            run_campaign(
                graph, CampaignStrategy.RECEPTIVE_STATES, Organ.KIDNEY,
            )

    def test_segment_strategy_improves_alignment(self, graph):
        """The paper's payoff: Fig. 7-style segment targeting delivers
        more on-topic awareness per user than raw audience size."""
        segment = run_campaign(
            graph, CampaignStrategy.SEGMENT, Organ.KIDNEY,
            budget=8, n_simulations=10,
        )
        top = run_campaign(
            graph, CampaignStrategy.TOP_FOLLOWERS, Organ.KIDNEY,
            budget=8, n_simulations=10,
        )
        assert segment.alignment > top.alignment

    def test_greedy_strategy(self, graph):
        outcome = run_campaign(
            graph, CampaignStrategy.GREEDY, Organ.HEART, budget=2,
            n_simulations=6,
        )
        assert len(outcome.seeds) == 2

    def test_invalid_budget(self, graph):
        with pytest.raises(ConfigError):
            run_campaign(graph, CampaignStrategy.RANDOM, Organ.HEART,
                         budget=0)
