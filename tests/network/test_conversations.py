"""Tests for conversation-thread extraction."""

from datetime import datetime, timezone

import pytest

from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.geo.geocoder import GeoMatch
from repro.network.conversations import (
    build_threads,
    thread_homogeneity,
)
from repro.organs import Organ
from repro.twitter.models import Tweet, UserProfile


def record(tweet_id, user_id, organs, in_reply_to=None):
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=tweet_id,
            user=UserProfile(user_id=user_id, screen_name=f"u{user_id}"),
            text="t",
            created_at=datetime(2015, 6, 1, tzinfo=timezone.utc),
            in_reply_to=in_reply_to,
        ),
        location=GeoMatch("US", "KS", 0.95, "test"),
        mentions=organs,
    )


@pytest.fixture()
def corpus():
    return TweetCorpus([
        record(1, 10, {Organ.KIDNEY: 1}),                     # root A
        record(2, 11, {Organ.KIDNEY: 1}, in_reply_to=1),      # A reply
        record(3, 12, {Organ.KIDNEY: 1}, in_reply_to=2),      # A reply-reply
        record(4, 13, {Organ.HEART: 1}),                      # root B (solo)
        record(5, 14, {Organ.LUNG: 1}, in_reply_to=999),      # orphan → root C
        record(6, 15, {Organ.LUNG: 1}, in_reply_to=5),        # C reply
    ])


class TestBuildThreads:
    def test_thread_count(self, corpus):
        threads = build_threads(corpus)
        assert len(threads) == 3

    def test_thread_membership(self, corpus):
        threads = {t.root_id: t for t in build_threads(corpus)}
        assert set(threads[1].tweet_ids) == {1, 2, 3}
        assert threads[4].tweet_ids == (4,)
        assert set(threads[5].tweet_ids) == {5, 6}

    def test_depth(self, corpus):
        threads = {t.root_id: t for t in build_threads(corpus)}
        assert threads[1].depth == 2
        assert threads[4].depth == 0
        assert threads[5].depth == 1

    def test_participants(self, corpus):
        threads = {t.root_id: t for t in build_threads(corpus)}
        assert threads[1].participants == frozenset({10, 11, 12})

    def test_orphan_reply_roots_its_own_thread(self, corpus):
        threads = {t.root_id: t for t in build_threads(corpus)}
        assert 5 in threads  # parent 999 not collected

    def test_is_conversation(self, corpus):
        threads = {t.root_id: t for t in build_threads(corpus)}
        assert threads[1].is_conversation
        assert not threads[4].is_conversation

    def test_organs_union(self, corpus):
        threads = {t.root_id: t for t in build_threads(corpus)}
        assert threads[1].organs == frozenset({Organ.KIDNEY})

    def test_every_tweet_in_exactly_one_thread(self, corpus):
        threads = build_threads(corpus)
        seen = [tid for t in threads for tid in t.tweet_ids]
        assert sorted(seen) == [1, 2, 3, 4, 5, 6]


class TestHomogeneity:
    def test_toy_threads_fully_homogeneous(self, corpus):
        result = thread_homogeneity(corpus)
        assert result.n_conversations == 2
        assert result.observed_single_organ_rate == 1.0

    def test_no_conversations(self):
        corpus = TweetCorpus([record(1, 10, {Organ.KIDNEY: 1})])
        result = thread_homogeneity(corpus)
        assert result.n_conversations == 0

    def test_support_group_signal_on_synthetic_world(self, midsize_corpus):
        """Replies target same-organ tweets by construction, so threads
        are far more organ-homogeneous than shuffled chance (ref [13])."""
        result = thread_homogeneity(midsize_corpus)
        assert result.n_conversations > 50
        assert result.observed_single_organ_rate > 0.8
        assert result.lift > 1.1
