"""Tests for follower-graph generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.network.graph import GraphConfig, build_follower_graph
from repro.organs import ORGANS
from repro.synth.config import PopulationConfig, SynthConfig
from repro.synth.world import SyntheticWorld


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld(
        SynthConfig(population=PopulationConfig(n_users=1500,
                                                us_fraction=0.6), seed=4)
    )


@pytest.fixture(scope="module")
def graph(world):
    return build_follower_graph(world, GraphConfig(seed=2))


class TestGraphConfig:
    def test_defaults_valid(self):
        GraphConfig()

    def test_bad_mean_followers(self):
        with pytest.raises(ConfigError):
            GraphConfig(mean_followers=0)

    def test_bad_prestige(self):
        with pytest.raises(ConfigError):
            GraphConfig(prestige_exponent=1.0)

    def test_homophily_shares_bounded(self):
        with pytest.raises(ConfigError):
            GraphConfig(same_state_share=0.7, same_organ_share=0.5)


class TestStructure:
    def test_every_user_is_a_node(self, world, graph):
        assert graph.n_users == world.n_users

    def test_edge_volume_near_mean_followers(self, world, graph):
        mean_degree = graph.n_edges / graph.n_users
        # Each user *follows* ~8 accounts before deduplication; the
        # prestige concentration collapses repeat picks of the same hub.
        assert 4.5 < mean_degree < 8.5

    def test_no_self_loops(self, graph):
        assert all(u != v for u, v in graph.graph.edges)

    def test_heavy_tailed_audiences(self, graph):
        audiences = sorted(
            (graph.audience_size(u) for u in graph.graph.nodes), reverse=True
        )
        assert audiences[0] > 20 * np.median(audiences[audiences != 0] if
                                             isinstance(audiences, np.ndarray)
                                             else audiences)

    def test_node_attributes_present(self, world, graph):
        for user in list(graph.graph.nodes)[:50]:
            assert graph.focal_of(user) in ORGANS
            assert graph.attention_of(user).shape == (6,)

    def test_deterministic_per_seed(self, world):
        a = build_follower_graph(world, GraphConfig(seed=9))
        b = build_follower_graph(world, GraphConfig(seed=9))
        assert set(a.graph.edges) == set(b.graph.edges)


class TestHomophily:
    def test_same_state_edges_enriched(self, world, graph):
        """Follow edges connect same-state pairs far above the random
        baseline."""
        edges = list(graph.graph.edges)
        same_state = sum(
            1
            for u, v in edges
            if graph.state_of(u) is not None
            and graph.state_of(u) == graph.state_of(v)
        )
        observed = same_state / len(edges)
        # Random baseline: ~Σ share² over states, well under 10%.
        assert observed > 0.12

    def test_same_focal_edges_enriched(self, graph):
        edges = list(graph.graph.edges)
        same_focal = sum(
            1 for u, v in edges if graph.focal_of(u) is graph.focal_of(v)
        )
        observed = same_focal / len(edges)
        # Random baseline ≈ Σ organ-share² ≈ 0.23 for the national prior.
        assert observed > 0.3


class TestAccessors:
    def test_followers_match_edges(self, graph):
        user = graph.top_audiences(1)[0]
        followers = graph.followers_of(user)
        assert len(followers) == graph.audience_size(user)

    def test_users_in_state(self, graph):
        ks_users = graph.users_in_state("KS")
        assert all(graph.state_of(u) == "KS" for u in ks_users)

    def test_top_audiences_sorted(self, graph):
        top = graph.top_audiences(10)
        sizes = [graph.audience_size(u) for u in top]
        assert sizes == sorted(sizes, reverse=True)
