"""Every example script must run end to end as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "TABLE I" in result.stdout
        assert "Fig. 5" in result.stdout

    def test_reproduce_paper_small(self, tmp_path):
        result = run_example(
            "reproduce_paper.py", "--scale", "0.02", "--seed", "3",
            "--out", str(tmp_path),
        )
        assert result.returncode == 0, result.stderr
        for artifact in ("table1", "fig2", "fig3", "fig4", "fig5", "fig6",
                         "fig7"):
            assert (tmp_path / f"{artifact}.txt").exists(), artifact
            assert (tmp_path / f"{artifact}.txt").stat().st_size > 50

    def test_campaign_targeting(self):
        result = run_example(
            "campaign_targeting.py", "--organ", "kidney", "--scale", "0.03",
        )
        assert result.returncode == 0, result.stderr
        assert "campaign plan: kidney" in result.stdout
        assert "user segments" in result.stdout

    @pytest.mark.parametrize("organ", ["heart", "lung"])
    def test_campaign_targeting_other_organs(self, organ):
        result = run_example(
            "campaign_targeting.py", "--organ", organ, "--scale", "0.02",
        )
        assert result.returncode == 0, result.stderr

    def test_streaming_monitor(self):
        result = run_example(
            "streaming_monitor.py", "--scale", "0.01", "--emit-every", "300",
        )
        assert result.returncode == 0, result.stderr
        assert "stream finished" in result.stdout
        assert "window end" in result.stdout

    def test_custom_entities(self):
        result = run_example("custom_entities.py")
        assert result.returncode == 0, result.stderr
        assert "club characterization" in result.stdout
        assert "america-rn" in result.stdout

    def test_dataset_tour(self):
        result = run_example("dataset_tour.py", "--scale", "0.03")
        assert result.returncode == 0, result.stderr
        assert "co-mentions" in result.stdout
        assert "demographic bias" in result.stdout
        assert "state × organ dependence" in result.stdout

    def test_sensor_validation(self):
        result = run_example(
            "sensor_validation.py", "--scale", "0.04", "--years", "6",
        )
        assert result.returncode == 0, result.stderr
        assert "cross-validation" in result.stdout
        assert "kidney" in result.stdout
