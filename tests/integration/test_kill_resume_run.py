"""SIGKILL a journaled run mid-stage and prove resume is byte-identical.

The run is executed in a subprocess that kills itself (``SIGKILL``, no
cleanup, no atexit) inside the torn window of a late stage — after the
stage's artifact is written but *before* the journal records it.  The
resumed run must skip every journaled stage and regenerate the rest so
that the final artifacts are byte-for-byte identical to a run that was
never interrupted.
"""

import json
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.pipeline.journal import STAGES, RunParams, run_stages

PARAMS = RunParams(scale=0.01, seed=7, k=6)

#: Late enough that the kill interrupts real analysis work, early enough
#: that several stages remain for the resume to run.
KILL_STAGE = "fig4"

_KILLER_SCRIPT = """
import os, signal, sys
from pathlib import Path
sys.path.insert(0, {src!r})
from repro.pipeline.journal import RunParams, run_stages

def kill_in_torn_window(stage):
    if stage == {kill_stage!r}:
        os.kill(os.getpid(), signal.SIGKILL)

run_stages(
    Path({run_dir!r}),
    RunParams(scale=0.01, seed=7, k=6),
    fault_hook=kill_in_torn_window,
)
"""


@pytest.fixture(scope="module")
def uninterrupted(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("uninterrupted")
    run_stages(run_dir, PARAMS)
    return run_dir


class TestKillAndResume:
    @pytest.fixture(scope="class")
    def killed_dir(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("killed")
        src = str(Path(__file__).resolve().parents[2] / "src")
        script = _KILLER_SCRIPT.format(
            src=src, kill_stage=KILL_STAGE, run_dir=str(run_dir)
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            timeout=600,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        return run_dir

    def test_kill_lands_in_the_torn_window(self, killed_dir):
        """The artifact exists but the journal does not record the stage
        — exactly the crash state resume must repair."""
        assert (killed_dir / f"{KILL_STAGE}.txt").exists()
        journal = json.loads((killed_dir / "journal.json").read_text())
        assert KILL_STAGE not in journal["stages"]
        kill_at = STAGES.index(KILL_STAGE)
        assert set(journal["stages"]) == set(STAGES[:kill_at])

    def test_resume_completes_with_byte_identical_artifacts(
        self, killed_dir, uninterrupted
    ):
        summary = run_stages(killed_dir, PARAMS, resume=True)
        kill_at = STAGES.index(KILL_STAGE)
        assert summary.stages_skipped == STAGES[:kill_at]
        assert summary.stages_run == STAGES[kill_at:]
        names = sorted(
            p.name for p in uninterrupted.iterdir() if p.name != "journal.json"
        )
        assert names == sorted(
            p.name for p in killed_dir.iterdir() if p.name != "journal.json"
        )
        for name in names:
            assert (killed_dir / name).read_bytes() == (
                uninterrupted / name
            ).read_bytes(), f"{name} differs after kill+resume"

    def test_resumed_journal_records_every_stage(self, killed_dir):
        journal = json.loads((killed_dir / "journal.json").read_text())
        assert set(journal["stages"]) == set(STAGES)
