"""End-to-end integration: world → pipeline → corpus → every experiment."""

import pytest

from repro.dataset.io import read_jsonl, write_jsonl
from repro.dataset.corpus import TweetCorpus
from repro.report.experiments import ExperimentSuite


class TestPipelineIntegration:
    def test_collection_yield_matches_paper_footnote(self, report):
        """134,986 / 975,021 ≈ 13.8% of collected tweets are US-locatable."""
        assert report.us_yield == pytest.approx(0.138, abs=0.03)

    def test_tweets_per_user_near_table1(self, corpus):
        from repro.dataset.stats import compute_stats

        stats = compute_stats(corpus)
        # 1.88 in the paper; small worlds truncate the activity tail.
        assert 1.3 < stats.avg_tweets_per_user < 2.4

    def test_organs_per_tweet_near_table1(self, corpus):
        from repro.dataset.stats import compute_stats

        stats = compute_stats(corpus)
        assert stats.organs_per_tweet == pytest.approx(1.03, abs=0.05)

    def test_organs_per_user_near_table1(self, corpus):
        from repro.dataset.stats import compute_stats

        stats = compute_stats(corpus)
        assert stats.organs_per_user == pytest.approx(1.13, abs=0.08)

    def test_collection_window_matches_table1(self, corpus):
        start, finish = corpus.time_span()
        assert start.date().isoformat() >= "2015-04-22"
        assert finish.date().isoformat() <= "2016-05-11"


class TestPersistenceIntegration:
    def test_corpus_roundtrip_through_jsonl(self, corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        write_jsonl(corpus.records, path)
        restored = TweetCorpus(read_jsonl(path))
        assert len(restored) == len(corpus)
        assert restored.user_ids() == corpus.user_ids()
        suite = ExperimentSuite(restored)
        original = ExperimentSuite(corpus)
        assert (
            suite.run_fig2().popularity_order()
            == original.run_fig2().popularity_order()
        )


class TestAllExperimentsRun:
    def test_every_artifact_renders_nonempty(self, suite):
        renders = [
            suite.run_table1().render(),
            suite.run_fig2().render(),
            suite.run_fig3().render(),
            suite.run_fig4().render(states=("KS", "CA")),
            suite.run_fig5().render(),
            suite.run_fig6().render(),
            suite.run_fig7().render(),
        ]
        for text in renders:
            assert len(text) > 50
