"""Does the paper's method recover what the synthetic world planted?

These are the scientific acceptance tests of the reproduction: each one
corresponds to a claim in the paper's §IV that our world plants by
construction and the analysis pipeline must rediscover from raw tweets.
"""

import numpy as np
import pytest

from repro.config import RelativeRiskConfig
from repro.core.characterize import characterize_organs, characterize_regions
from repro.core.relative_risk import highlighted_organs
from repro.data.paper import (
    PAPER_ORGAN_CO_ATTENTION,
    PAPER_TWITTER_POPULARITY_ORDER,
)
from repro.dataset.stats import users_per_organ
from repro.organs import ORGANS, Organ


class TestOrganPopularityRecovery:
    def test_popularity_order_matches_paper(self, midsize_corpus):
        """Fig. 2a: heart > kidney > liver > lung > pancreas > intestine."""
        counts = users_per_organ(midsize_corpus)
        order = tuple(sorted(counts, key=lambda organ: -counts[organ]))
        assert order == PAPER_TWITTER_POPULARITY_ORDER

    def test_spearman_vs_transplants_near_paper(self, midsize_suite):
        """r = .84 in the paper; the planted heart inversion yields .83."""
        result = midsize_suite.run_fig2().correlation
        assert result.r == pytest.approx(0.84, abs=0.05)
        assert result.significant


class TestCoAttentionRecovery:
    def test_top_co_organs_mostly_match_paper(self, midsize_corpus):
        """Fig. 3 reading: kidney top for heart/liver/pancreas users;
        heart top for kidney/lung users.  Intestine is excluded: the paper
        itself calls its statistics unreliable (§IV-A)."""
        characterization = characterize_organs(midsize_corpus)
        for focal, expected in PAPER_ORGAN_CO_ATTENTION.items():
            if focal is Organ.INTESTINE:
                continue
            assert characterization.top_co_organ(focal) is expected, focal


class TestGeographicRecovery:
    def test_kansas_kidney_anomaly(self, midsize_corpus):
        """§IV-B1's flagship finding."""
        highlights = highlighted_organs(midsize_corpus)
        assert Organ.KIDNEY in highlights.get("KS", ())

    def test_kansas_only_midwest_kidney_state(self, midsize_corpus):
        from repro.geo.gazetteer import CensusRegion, state_by_abbrev

        highlights = highlighted_organs(midsize_corpus)
        midwest_kidney = [
            state
            for state, organs in highlights.items()
            if Organ.KIDNEY in organs
            and state_by_abbrev(state).region is CensusRegion.MIDWEST
        ]
        assert midwest_kidney == ["KS"]

    def test_paper_named_anomalies_recovered(self, midsize_corpus):
        highlights = highlighted_organs(midsize_corpus)
        assert Organ.KIDNEY in highlights.get("LA", ())
        assert Organ.LUNG in highlights.get("MA", ())

    def test_most_planted_boosts_recovered(self, midsize_world, midsize_corpus):
        """Across planted anomalies in states with enough users for the
        RR test to have power, the detector should find most.  Small
        states (DE, RI, ND at this scale) are legitimately undetectable —
        the paper makes the same caveat about thin statistics."""
        from collections import Counter

        state_users = Counter(
            user.state for user in midsize_corpus.user_slices()
        )
        planted = midsize_world.ground_truth.planted_boosts()
        highlights = highlighted_organs(midsize_corpus)
        strong = {
            (state, organ)
            for state, boosts in planted.items()
            for organ, factor in boosts.items()
            if factor >= 1.7 and state_users[state] >= 60
        }
        assert strong, "fixture too small: no powered planted anomalies"
        recovered = {
            (state, organ)
            for state, organs in highlights.items()
            for organ in organs
        }
        hit_rate = len(strong & recovered) / len(strong)
        assert hit_rate >= 0.7, sorted(strong - recovered)

    def test_no_false_positives_dominate(self, midsize_world, midsize_corpus):
        """Highlighted organs should mostly be planted ones."""
        planted = midsize_world.ground_truth.planted_boosts()
        planted_pairs = {
            (state, organ)
            for state, boosts in planted.items()
            for organ in boosts
        }
        highlights = highlighted_organs(midsize_corpus)
        flagged = {
            (state, organ)
            for state, organs in highlights.items()
            for organ in organs
        }
        if flagged:
            precision = len(flagged & planted_pairs) / len(flagged)
            assert precision >= 0.6, sorted(flagged - planted_pairs)

    def test_null_world_produces_few_highlights(self):
        """False-positive control: with nothing planted, ~alpha-level
        flags only."""
        from repro.pipeline.runner import CollectionPipeline
        from repro.synth.scenarios import null_uniform_scenario
        from repro.synth.world import SyntheticWorld

        world = SyntheticWorld(null_uniform_scenario(n_users=20000, seed=13))
        corpus, __ = CollectionPipeline().run(world.firehose())
        highlights = highlighted_organs(
            corpus, RelativeRiskConfig(alpha=0.05, min_users=20)
        )
        n_tests = sum(1 for organs in highlights.values()) * len(ORGANS)
        n_flagged = sum(len(organs) for organs in highlights.values())
        # One-sided test at alpha/2 per (state, organ): expect ~2.5%.
        assert n_flagged <= max(3, 0.08 * n_tests)


class TestStateClusterRecovery:
    # Well-populated states sharing a planted organ lean, per organ.
    _ZONES = {
        "liver": ("CO", "TX", "NC", "AZ"),
        "lung": ("OR", "GA", "VA", "WA", "MI", "WI", "MA"),
        "kidney": ("KS", "LA", "NY", "TN", "AL"),
    }

    def test_same_boost_states_closer_than_cross_zone(self, midsize_corpus):
        """Fig. 6's zones: states boosted toward the same organ must be
        mutually closer (Bhattacharyya) than to states boosted toward a
        different organ."""
        characterization = characterize_regions(midsize_corpus)
        from repro.cluster.distances import pairwise_distances

        matrix = pairwise_distances(characterization.matrix_k())
        states = list(characterization.states)

        def mean_distance(group_a, group_b):
            values = [
                matrix[states.index(a), states.index(b)]
                for a in group_a
                for b in group_b
                if a != b and a in states and b in states
            ]
            return float(np.mean(values))

        for organ, zone in self._ZONES.items():
            others = [
                state
                for other_organ, other_zone in self._ZONES.items()
                if other_organ != organ
                for state in other_zone
            ]
            within = mean_distance(zone, zone)
            across = mean_distance(zone, others)
            assert within < across, organ


class TestUserClusterRecovery:
    def test_kmeans_clusters_align_with_archetypes(self, midsize_world,
                                                   midsize_suite):
        """Users in single-focus clusters should predominantly be planted
        single-focus archetypes."""
        clustering = midsize_suite.run_fig7().clustering
        attention = midsize_suite.attention
        truth = midsize_world.ground_truth
        from repro.synth.attention import Archetype

        centers = clustering.result.centers
        for cluster in range(clustering.k):
            if clustering.n_focus_organs(cluster, threshold=0.5) != 1:
                continue
            members = np.flatnonzero(clustering.result.labels == cluster)
            if members.size < 50:
                continue
            archetypes = [
                truth.attentions[attention.user_ids[m]].archetype
                for m in members[:500]
            ]
            single = sum(a is Archetype.SINGLE_FOCUS for a in archetypes)
            assert single / len(archetypes) > 0.6

    def test_silhouette_high_as_paper_reports(self, midsize_suite):
        clustering = midsize_suite.run_fig7().clustering
        assert clustering.silhouette > 0.85  # paper: 0.953
