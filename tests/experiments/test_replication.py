"""Tests for the multi-seed replication harness."""

import pytest

from repro.experiments.replication import replicate


class TestReplicate:
    @pytest.fixture(scope="class")
    def summary(self):
        # Two small seeds keep the harness test fast; power-sensitive
        # checks may fail at this scale, which is fine — the harness is
        # what is under test.
        return replicate(seeds=(1, 2), scale=0.02)

    def test_one_result_per_seed(self, summary):
        assert summary.n_seeds == 2
        assert [result.seed for result in summary.results] == [1, 2]

    def test_pass_rates_in_unit_interval(self, summary):
        for rate in summary.pass_rates().values():
            assert 0.0 <= rate <= 1.0

    def test_metrics_aggregated(self, summary):
        metrics = summary.metric_summary()
        assert set(metrics) == {
            "us_yield", "spearman_r", "silhouette_k12", "n_users",
        }
        for mean, std in metrics.values():
            assert std >= 0.0
        mean_yield, __ = metrics["us_yield"]
        assert 0.08 < mean_yield < 0.20

    def test_robust_checks_pass_even_small(self, summary):
        """Scale-insensitive checks must pass on every seed."""
        rates = summary.pass_rates()
        assert rates["organs/user exceeds organs/tweet"] == 1.0
        assert rates["popularity order heart…intestine"] == 1.0

    def test_render(self, summary):
        text = summary.render()
        assert "Replication over 2 seeds" in text
        assert "pass rates" in text
        assert "us_yield" in text

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(seeds=())
