"""Property-based tests for the statistics substrate."""

import math

import numpy as np
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.stats.correlation import pearson, spearman
from repro.stats.proportions import relative_risk
from repro.stats.ranking import rankdata

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRankdataProperties:
    @given(npst.arrays(np.float64, st.integers(1, 200), elements=finite_floats))
    def test_matches_scipy(self, data):
        np.testing.assert_allclose(rankdata(data), scipy.stats.rankdata(data))

    @given(npst.arrays(np.float64, st.integers(1, 100), elements=finite_floats))
    def test_rank_sum_is_invariant(self, data):
        n = data.size
        assert rankdata(data).sum() == np.float64(n * (n + 1) / 2)

    @given(
        npst.arrays(
            np.float64, st.integers(1, 100),
            # Integral values: translation cannot collapse distinct values
            # through floating-point absorption.
            elements=st.integers(-1000, 1000).map(float),
        )
    )
    def test_translation_invariance(self, data):
        np.testing.assert_allclose(rankdata(data), rankdata(data + 17.5))

    @given(npst.arrays(np.float64, st.integers(2, 60), elements=finite_floats))
    def test_order_preservation(self, data):
        ranks = rankdata(data)
        for i in range(data.size):
            for j in range(data.size):
                if data[i] < data[j]:
                    assert ranks[i] < ranks[j]


class TestCorrelationProperties:
    @given(
        npst.arrays(np.float64, 20, elements=finite_floats),
        npst.arrays(np.float64, 20, elements=finite_floats),
    )
    def test_symmetry(self, x, y):
        a = pearson(x, y)
        b = pearson(y, x)
        if math.isnan(a.r):
            assert math.isnan(b.r)
        else:
            assert a.r == b.r

    @given(npst.arrays(np.float64, st.integers(3, 50), elements=finite_floats))
    def test_self_correlation(self, x):
        result = spearman(x, x)
        if not math.isnan(result.r):
            assert result.r == 1.0

    @given(
        npst.arrays(np.float64, 25, elements=finite_floats),
        npst.arrays(np.float64, 25, elements=finite_floats),
    )
    def test_bounded(self, x, y):
        result = spearman(x, y)
        if not math.isnan(result.r):
            assert -1.0 <= result.r <= 1.0

    @given(
        npst.arrays(
            np.float64, 25, elements=st.integers(-10_000, 10_000).map(float)
        ),
        st.floats(min_value=0.5, max_value=100),
        st.floats(min_value=-50, max_value=50),
    )
    def test_spearman_monotone_transform_invariance(self, x, scale, shift):
        y = scale * x + shift
        result = spearman(x, y)
        if not math.isnan(result.r):
            assert result.r >= 0.999999


@st.composite
def rr_inputs(draw):
    n_exposed = draw(st.integers(2, 500))
    n_control = draw(st.integers(2, 500))
    events_exposed = draw(st.integers(1, n_exposed))
    events_control = draw(st.integers(1, n_control))
    return events_exposed, n_exposed, events_control, n_control


class TestRelativeRiskProperties:
    @given(rr_inputs())
    def test_reciprocal_symmetry(self, inputs):
        a, n1, b, n2 = inputs
        forward = relative_risk(a, n1, b, n2)
        backward = relative_risk(b, n2, a, n1)
        assert forward.rr * backward.rr == np.float64(1.0) or (
            abs(forward.rr * backward.rr - 1.0) < 1e-9
        )

    @given(rr_inputs())
    def test_ci_ordering(self, inputs):
        result = relative_risk(*inputs)
        assert result.ci_low <= result.rr <= result.ci_high

    @given(rr_inputs(), st.integers(2, 20))
    @settings(max_examples=60)
    def test_count_scaling_preserves_point_estimate(self, inputs, factor):
        a, n1, b, n2 = inputs
        base = relative_risk(a, n1, b, n2)
        scaled = relative_risk(a * factor, n1 * factor, b * factor, n2 * factor)
        assert scaled.rr == base.rr or abs(scaled.rr - base.rr) < 1e-9

    @given(rr_inputs(), st.integers(2, 20))
    @settings(max_examples=60)
    def test_count_scaling_narrows_ci(self, inputs, factor):
        a, n1, b, n2 = inputs
        base = relative_risk(a, n1, b, n2)
        scaled = relative_risk(a * factor, n1 * factor, b * factor, n2 * factor)
        assert scaled.se_log_rr <= base.se_log_rr + 1e-12

    @given(rr_inputs())
    def test_excess_and_deficit_mutually_exclusive(self, inputs):
        result = relative_risk(*inputs)
        assert not (result.significant_excess and result.significant_deficit)
