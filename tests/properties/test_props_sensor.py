"""Property-based tests for the rolling awareness sensor."""

from datetime import datetime, timedelta, timezone

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RelativeRiskConfig
from repro.sensor.rolling import RollingAwarenessSensor
from repro.twitter.models import Tweet, UserProfile

_START = datetime(2015, 6, 1, tzinfo=timezone.utc)

_ON_TOPIC = (
    "kidney donor drive", "heart transplant news", "liver donor needed",
    "lung transplant waitlist", "be an organ donor #pancreas",
)
_OFF_TOPIC = ("nice sunset", "coffee time", "donate to the food bank")
_LOCATIONS = ("Wichita, KS", "Boston, MA", "Austin, TX", "London", "the moon")


@st.composite
def tweet_stream(draw):
    n = draw(st.integers(1, 80))
    tweets = []
    minute = 0
    for index in range(n):
        minute += draw(st.integers(0, 600))
        on_topic = draw(st.booleans())
        text = draw(st.sampled_from(_ON_TOPIC if on_topic else _OFF_TOPIC))
        tweets.append(
            Tweet(
                tweet_id=index,
                user=UserProfile(
                    user_id=draw(st.integers(0, 20)),
                    screen_name="u",
                    location=draw(st.sampled_from(_LOCATIONS)),
                ),
                text=text,
                created_at=_START + timedelta(minutes=minute),
            )
        )
    return tweets


class TestSensorProperties:
    @given(tweet_stream(), st.integers(1, 72))
    @settings(max_examples=50, deadline=None)
    def test_window_invariant(self, tweets, window_hours):
        """After each observation, nothing in the buffer predates the
        window horizon, and counters never decrease."""
        sensor = RollingAwarenessSensor(
            window=timedelta(hours=window_hours),
            relative_risk=RelativeRiskConfig(min_users=2),
        )
        previous_seen = 0
        for tweet in tweets:
            sensor.observe(tweet)
            assert sensor.seen == previous_seen + 1
            previous_seen = sensor.seen
            horizon = tweet.created_at - sensor.window
            snapshot = sensor.snapshot()
            if snapshot is not None:
                assert snapshot.window_start >= horizon
                assert snapshot.n_tweets == sensor.window_size
                assert snapshot.n_users <= snapshot.n_tweets

    @given(tweet_stream())
    @settings(max_examples=30, deadline=None)
    def test_retained_bounded_by_seen(self, tweets):
        sensor = RollingAwarenessSensor(window=timedelta(days=30))
        for tweet in tweets:
            sensor.observe(tweet)
        assert 0 <= sensor.retained <= sensor.seen

    @given(tweet_stream(), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_run_emits_final_snapshot_when_nonempty(self, tweets, emit_every):
        sensor = RollingAwarenessSensor(window=timedelta(days=365))
        snapshots = list(sensor.run(iter(tweets), emit_every=emit_every))
        if sensor.retained > 0:
            assert snapshots
            assert snapshots[-1].n_tweets == sensor.window_size
        else:
            assert snapshots == []
