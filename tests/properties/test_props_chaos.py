"""Chaos-equivalence properties.

The headline robustness guarantee: a resilient client over a faulty
source yields *byte-identical* output to the fault-free stream, for every
fault class alone and all of them combined, across seeds — and the
reliability report accounts for every fault the source injected.
"""

import json
from itertools import islice

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ResiliencePolicy
from repro.twitter.faults import FaultPlan, FaultySource
from repro.twitter.models import Tweet, UserProfile
from repro.twitter.resilient import ResilientStream, ensure_compatible

SEEDS = (1, 7, 42)

#: One entry per injected fault class, plus everything at once.
FAULT_CLASSES = {
    "disconnect": {"disconnect_rate": 0.05},
    "rate_limit": {"rate_limit_rate": 0.5},
    "http_error": {"http_error_rate": 0.5},
    "stall": {"stall_rate": 0.02},
    "keepalive": {"keepalive_rate": 0.1},
    "garbage": {"garbage_rate": 0.05},
    "truncate": {"truncate_rate": 0.05},
    "combined": {
        "disconnect_rate": 0.02,
        "rate_limit_rate": 0.3,
        "http_error_rate": 0.3,
        "stall_rate": 0.01,
        "keepalive_rate": 0.05,
        "garbage_rate": 0.01,
        "truncate_rate": 0.01,
    },
}


def make_tweets(n: int) -> list[Tweet]:
    return [
        Tweet(
            tweet_id=i,
            user=UserProfile(user_id=i % 7, screen_name="u"),
            text=f"kidney donor update {i}",
        )
        for i in range(n)
    ]


def serialize(stream) -> bytes:
    return "\n".join(
        json.dumps(t.to_dict(), ensure_ascii=False) for t in stream
    ).encode("utf-8")


class TestChaosEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("fault", sorted(FAULT_CLASSES))
    def test_stream_byte_identical(self, fault, seed):
        items = make_tweets(250)
        plan = FaultPlan(seed=seed, **FAULT_CLASSES[fault])
        policy = ResiliencePolicy(seed=seed)
        ensure_compatible(policy, plan)
        resilient = ResilientStream(FaultySource(iter(items), plan), policy)
        assert serialize(resilient) == serialize(items)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_report_accounts_for_every_injected_fault(self, seed):
        items = make_tweets(300)
        plan = FaultPlan(seed=seed, stall_ticks=12,
                         **FAULT_CLASSES["combined"])
        source = FaultySource(iter(items), plan)
        stream = ResilientStream(source, ResiliencePolicy(seed=seed))
        assert [t.tweet_id for t in stream] == [t.tweet_id for t in items]

        report, injected = stream.report, source.injected
        assert report.delivered == len(items)
        assert report.connects == injected.connections
        assert report.disconnects == injected.disconnects
        assert report.rejections_420 == injected.rate_limited
        assert report.rejections_503 == injected.http_errors
        # Every malformed frame (garbage or torn) is dead-lettered.
        assert report.dead_lettered == (
            injected.garbage_frames + injected.truncated_frames
        )
        # A torn record's intact backfill copy is its first valid arrival,
        # so it is not a suppressed duplicate.
        assert report.duplicates_suppressed == (
            injected.duplicates - injected.truncated_frames
        )
        # Each injected stall burst (12 ticks) crosses the 6-tick timeout
        # exactly once.
        assert report.stalls_detected == injected.stalls
        assert report.retries_network == (
            report.disconnects + report.stalls_detected
        )

    def test_pipeline_chaos_equivalence(self, small_world):
        from repro.pipeline.runner import CollectionPipeline

        window = list(islice(small_world.firehose(), 2000))
        plain_corpus, plain_report = CollectionPipeline().run(iter(window))
        chaos_corpus, chaos_report = CollectionPipeline().run(
            iter(window), fault_plan=FaultPlan.chaos(seed=5)
        )
        plain_bytes = serialize(r.tweet for r in plain_corpus)
        chaos_bytes = serialize(r.tweet for r in chaos_corpus)
        assert chaos_bytes == plain_bytes
        assert plain_report.reliability is None
        assert chaos_report.reliability is not None
        assert chaos_report.reliability.delivered == len(window)


@st.composite
def fault_plans(draw):
    return FaultPlan(
        seed=draw(st.integers(0, 2**16)),
        disconnect_rate=draw(st.floats(0.0, 0.1)),
        rate_limit_rate=draw(st.floats(0.0, 0.6)),
        http_error_rate=draw(st.floats(0.0, 0.6)),
        stall_rate=draw(st.floats(0.0, 0.05)),
        stall_ticks=draw(st.integers(1, 15)),
        keepalive_rate=draw(st.floats(0.0, 0.2)),
        garbage_rate=draw(st.floats(0.0, 0.05)),
        truncate_rate=draw(st.floats(0.0, 0.05)),
        backfill_depth=draw(st.integers(1, 12)),
        reorder_span=draw(st.integers(0, 6)),
    )


class TestArbitraryPlans:
    @given(plan=fault_plans())
    @settings(max_examples=25, deadline=None)
    def test_any_plan_preserves_the_stream(self, plan):
        items = make_tweets(120)
        policy = ResiliencePolicy()
        ensure_compatible(policy, plan)
        stream = ResilientStream(FaultySource(iter(items), plan), policy)
        assert [t.tweet_id for t in stream] == list(range(120))
        assert stream.report.delivered == 120
