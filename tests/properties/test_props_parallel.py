"""Parallel-equivalence properties.

The headline guarantee of the sharded pipeline: for any worker count the
corpus is *byte-identical* to the serial run and the merged report agrees
on every counter — including when the transport is under chaos-mode fault
injection, since recovery happens in the parent before sharding.
"""

import json

import pytest

from repro.pipeline.runner import CollectionPipeline, PipelineReport
from repro.synth.scenarios import paper2016_scenario
from repro.synth.world import SyntheticWorld
from repro.twitter.faults import FaultPlan

SEEDS = (3, 11, 42)
WORKER_COUNTS = (1, 2, 4)


def make_firehose(seed: int) -> list:
    world = SyntheticWorld(paper2016_scenario(scale=0.004, seed=seed))
    return list(world.firehose())


def corpus_bytes(corpus) -> bytes:
    return "\n".join(
        json.dumps(record.to_dict(), ensure_ascii=False)
        for record in corpus.records
    ).encode("utf-8")


def counters(report: PipelineReport) -> dict[str, int]:
    return {
        name: getattr(report, name)
        for name in (
            "stream_dropped", "collected", "located_gps", "located_profile",
            "unresolved", "non_us", "us_located", "no_mentions", "retained",
        )
    }


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_corpus_and_counters_identical(self, seed, workers):
        source = make_firehose(seed)
        serial_corpus, serial_report = CollectionPipeline().run(source)
        corpus, report = CollectionPipeline().run(source, workers=workers)
        assert corpus_bytes(corpus) == corpus_bytes(serial_corpus)
        assert counters(report) == counters(serial_report)
        assert report.us_yield == serial_report.us_yield
        assert report.retention == serial_report.retention

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_run_survives_sharding(self, seed):
        """Fault recovery is transport-level (parent side), so chaos plus
        sharding must still reproduce the fault-free serial corpus."""
        source = make_firehose(seed)
        serial_corpus, serial_report = CollectionPipeline().run(source)
        corpus, report = CollectionPipeline().run(
            source, fault_plan=FaultPlan.chaos(seed=seed), workers=2
        )
        assert corpus_bytes(corpus) == corpus_bytes(serial_corpus)
        assert counters(report) == counters(serial_report)
        assert report.reliability is not None
        assert report.reliability.total_retries > 0

    def test_worker_counts_agree_with_each_other(self):
        source = make_firehose(SEEDS[0])
        outputs = [
            corpus_bytes(CollectionPipeline().run(source, workers=w)[0])
            for w in WORKER_COUNTS
        ]
        assert len(set(outputs)) == 1
