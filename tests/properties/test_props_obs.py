"""Observability chaos-equivalence properties.

The telemetry layer's headline guarantee: turning tracing on changes
*no* computed byte anywhere.  Telemetry is write-only — no code path
reads a span or counter to make a decision — so a traced run produces a
byte-identical corpus and identical artifacts to an untraced one, for
every worker count and under every injected fault class (transport,
compute, disk).  And the trace file itself inherits the storage layer's
durability: flushed atomically after every stage, it is always either
absent or schema-valid, even when the run is killed mid-stage or the
writer dies mid-line.
"""

import json

import pytest

from repro.faults.compute import WorkerFaultPlan
from repro.faults.storage import SimulatedCrash, StorageFaultPlan
from repro.dataset.io import write_jsonl
from repro.obs import ManualClock, Telemetry, activate
from repro.obs.export import (
    TRACE_FILENAME,
    read_trace,
    summarize_trace,
    validate_trace,
)
from repro.pipeline.journal import STAGES, RunParams, run_stages
from repro.pipeline.runner import CollectionPipeline
from repro.storage.fs import FaultyFS
from repro.supervise import SupervisorPolicy
from repro.synth.scenarios import paper2016_scenario
from repro.synth.world import SyntheticWorld
from repro.twitter.faults import FaultPlan

SEEDS = (3, 42)
WORKER_COUNTS = (1, 2, 4)

#: Retries must out-number faulted attempts (ensure_supervisable).
CHAOS_POLICY = SupervisorPolicy(max_retries=2)

#: Small but analysis-complete journaled-run parameters (k >= 6 organs).
PARAMS = RunParams(scale=0.01, seed=7, k=6)

_FIREHOSES: dict[int, list] = {}


def make_firehose(seed: int) -> list:
    if seed not in _FIREHOSES:
        world = SyntheticWorld(paper2016_scenario(scale=0.004, seed=seed))
        _FIREHOSES[seed] = list(world.firehose())
    return _FIREHOSES[seed]


def corpus_bytes(corpus) -> bytes:
    return "\n".join(
        json.dumps(record.to_dict(), ensure_ascii=False)
        for record in corpus.records
    ).encode("utf-8")


def run_pipeline(source, chaos: str, workers: int, seed: int):
    kwargs: dict = {"workers": workers}
    if chaos == "transport":
        kwargs["fault_plan"] = FaultPlan.chaos(seed=seed)
    elif chaos == "compute":
        kwargs["supervisor"] = CHAOS_POLICY
        kwargs["worker_faults"] = WorkerFaultPlan.chaos(seed=seed)
    return CollectionPipeline().run(source, **kwargs)


class TestTraceOnOffEquivalence:
    """Tracing on vs off: byte-identical corpora under every chaos mode."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("chaos", ("none", "transport", "compute"))
    def test_corpus_byte_identical(self, chaos, workers, seed):
        source = make_firehose(seed)
        untraced_corpus, untraced_report = run_pipeline(
            source, chaos, workers, seed
        )
        telemetry = Telemetry()
        with activate(telemetry):
            traced_corpus, traced_report = run_pipeline(
                source, chaos, workers, seed
            )
        assert corpus_bytes(traced_corpus) == corpus_bytes(untraced_corpus)
        assert traced_report.to_dict() == untraced_report.to_dict()
        # The trace is not vacuous: it saw the run it rode along with.
        assert telemetry.tracer.spans
        assert telemetry.metrics.counter_value(
            "pipeline.retained"
        ) == len(traced_corpus.records)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_disk_chaos_write_byte_identical(self, tmp_path, seed):
        corpus, __ = CollectionPipeline().run(make_firehose(seed))
        untraced = tmp_path / "untraced.jsonl"
        traced = tmp_path / "traced.jsonl"
        plan = StorageFaultPlan(seed=seed, eio_rate=0.4, max_eio_per_path=2)
        write_jsonl(corpus.records, untraced, fs=FaultyFS(plan))
        telemetry = Telemetry()
        with activate(telemetry):
            write_jsonl(corpus.records, traced, fs=FaultyFS(plan))
        assert traced.read_bytes() == untraced.read_bytes()
        # The EIO retries the fault plan forced were recorded.
        assert telemetry.metrics.counter_value("storage.eio_retries") > 0

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_worker_buffers_merge_deterministically(self, workers):
        """Two traced runs agree on every non-timing trace record.

        Timing-dependent series are excluded: the heartbeat counter
        tallies liveness polls (more of them when workers run longer)
        and duration histograms bucket wall time; everything else —
        funnel counts, retry counts, span structure — must be
        identical run to run.
        """
        source = make_firehose(SEEDS[0])
        timing_counters = {"supervisor.heartbeats"}

        def stable_records(telemetry):
            records = []
            for record in telemetry.metrics.to_records():
                if record["kind"] == "histogram":
                    records.append(
                        {key: record[key] for key in ("name", "labels", "count")}
                    )
                elif record["name"] not in timing_counters:
                    records.append(record)
            return records

        def traced_metrics():
            telemetry = Telemetry()
            with activate(telemetry):
                CollectionPipeline().run(source, workers=workers)
            return telemetry

        a, b = traced_metrics(), traced_metrics()
        assert stable_records(a) == stable_records(b)
        assert [
            (s.name, s.worker, s.span_id, s.parent_id, s.attrs)
            for s in a.tracer.spans
        ] == [
            (s.name, s.worker, s.span_id, s.parent_id, s.attrs)
            for s in b.tracer.spans
        ]


class TestJournaledRunTraceEquivalence:
    """A traced journaled run writes the same artifacts as an untraced one."""

    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        untraced_dir = tmp_path_factory.mktemp("untraced")
        traced_dir = tmp_path_factory.mktemp("traced")
        untraced = run_stages(untraced_dir, PARAMS)
        traced = run_stages(traced_dir, PARAMS, trace=True)
        return untraced_dir, traced_dir, untraced, traced

    def test_artifacts_byte_identical(self, runs):
        untraced_dir, traced_dir, untraced, traced = runs
        assert traced.stages_run == untraced.stages_run == STAGES
        names = {p.name for p in untraced_dir.iterdir()}
        assert {p.name for p in traced_dir.iterdir()} == names | {
            TRACE_FILENAME
        }
        for name in sorted(names):
            assert (traced_dir / name).read_bytes() == (
                untraced_dir / name
            ).read_bytes(), name

    def test_trace_is_valid_and_complete(self, runs):
        __, traced_dir, __, traced = runs
        records = read_trace(traced_dir / TRACE_FILENAME)
        assert validate_trace(records) == []
        summary = summarize_trace(records)
        assert [name for name, __, __ in summary.stages] == [
            f"stage.{stage}" for stage in STAGES
        ]
        assert summary.funnel["pipeline.retained"] == traced.report.retained
        assert summary.fault_counters["journal.stages_run"] == len(STAGES)

    def test_trace_flag_does_not_change_the_fingerprint(self, runs):
        """A traced run resumes an untraced journal (and vice versa)."""
        untraced_dir, traced_dir, __, __ = runs
        resumed = run_stages(untraced_dir, PARAMS, resume=True, trace=True)
        assert resumed.stages_skipped == STAGES
        resumed = run_stages(traced_dir, PARAMS, resume=True)
        assert resumed.stages_skipped == STAGES


class TestTraceSurvivesKills:
    """The trace file is always absent or valid, however the run dies."""

    @pytest.mark.parametrize("kill_after", ("collect", "fig4"))
    def test_mid_stage_kill_leaves_a_valid_trace(self, tmp_path, kill_after):
        def fault_hook(stage: str) -> None:
            if stage == kill_after:
                raise SimulatedCrash(f"killed after {stage}")

        run_dir = tmp_path / "run"
        with pytest.raises(SimulatedCrash):
            run_stages(run_dir, PARAMS, trace=True, fault_hook=fault_hook)
        # The hook fires before record_stage, so the newest flush on
        # disk describes the run up to the *previous* stage.
        records = read_trace(run_dir / TRACE_FILENAME)
        assert validate_trace(records) == []
        completed = STAGES[: STAGES.index(kill_after)]
        summary = summarize_trace(records)
        assert [name for name, __, __ in summary.stages] == [
            f"stage.{stage}" for stage in completed
        ]
        assert records[0]["last_stage"] == completed[-1]

    @pytest.mark.parametrize("fraction", (0.25, 0.75))
    def test_disk_crash_never_tears_the_trace(
        self, tmp_path, fraction
    ):
        probe = FaultyFS(StorageFaultPlan.none())
        probe_dir = tmp_path / "probe"
        run_stages(probe_dir, PARAMS, trace=True, fs=probe)

        crash_dir = tmp_path / "crash"
        plan = StorageFaultPlan(
            seed=1, crash_at=int(probe.syscalls * fraction)
        )
        with pytest.raises(SimulatedCrash):
            run_stages(crash_dir, PARAMS, trace=True, fs=FaultyFS(plan))
        trace_path = crash_dir / TRACE_FILENAME
        if trace_path.exists():
            assert validate_trace(read_trace(trace_path)) == []

    def test_writer_killed_mid_line_still_parses(self, tmp_path):
        run_dir = tmp_path / "run"
        run_stages(run_dir, PARAMS, trace=True)
        trace_path = run_dir / TRACE_FILENAME
        whole = read_trace(trace_path)
        # Rip the tail mid-record, as a power cut on a non-atomic copy
        # (e.g. an rsync of a live run directory) would.
        trace_path.write_bytes(trace_path.read_bytes()[:-17])
        with pytest.warns(UserWarning, match="torn trailing record"):
            torn = read_trace(trace_path)
        assert torn == whole[:-1]
        assert validate_trace(torn) == []


class TestManualClockDeterminism:
    """Under a manual clock, even span timings are reproducible."""

    def test_identical_bundles_identical_records(self):
        def build():
            clock = ManualClock()
            telemetry = Telemetry(clock=clock)
            with telemetry.span("stage.collect"):
                clock.advance(1.0)
                telemetry.inc("pipeline.collected", 9)
            return telemetry

        from repro.obs.export import trace_records

        assert trace_records(build()) == trace_records(build())
