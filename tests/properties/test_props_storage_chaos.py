"""Storage chaos-equivalence properties.

The durability guarantee: the persisted corpus is *byte-identical* to a
fault-free run under every injected disk-fault class — transient EIO,
ENOSPC, torn writes, crash windows around the rename, lying fsyncs —
for any worker count and across seeds.  Faults either are absorbed
invisibly (EIO retry, harmless lie) or fail/crash leaving the previous
corpus untouched, after which a clean retry converges to the exact
baseline bytes.  And bitrot, the fault that strikes *after* every write
"succeeded", is detected 100% by the manifest scrub with nothing
silently dropped.
"""

import json
import warnings

import pytest

from repro.errors import StorageError
from repro.faults.storage import SimulatedCrash, StorageFaultPlan, flip_bits
from repro.dataset.io import write_jsonl
from repro.pipeline.incremental import IncrementalCollector
from repro.pipeline.runner import CollectionPipeline
from repro.storage.fs import FaultyFS
from repro.storage.manifest import verify_file
from repro.storage.scrub import quarantine_path, scrub_file
from repro.twitter.models import Tweet, UserProfile

SEEDS = (1, 7, 42)
WORKER_COUNTS = (1, 2, 4)

#: The five storage fault classes of the taxonomy.  Rate faults must be
#: invisible; point faults must fail/crash without damaging the old
#: corpus, and converge on a clean retry.
RATE_FAULTS = {
    "eio": {"eio_rate": 0.4, "max_eio_per_path": 2},
    "fsync_lie": {"fsync_lie_rate": 0.5},
}
#: Point faults aim at a syscall *kind*; the index is taken from a
#: recorded clean-run trace.
POINT_FAULTS = {
    "enospc": ("write", "enospc_at", StorageError),
    "torn_write": ("write", "torn_write_at", SimulatedCrash),
    "crash_before_replace": ("replace", "crash_at", SimulatedCrash),
    "crash_replace_window": ("fsync_dir", "crash_at", SimulatedCrash),
}


def make_tweets(n: int) -> list[Tweet]:
    return [
        Tweet(
            tweet_id=i,
            user=UserProfile(
                user_id=i % 7, screen_name="u", location="Wichita, KS"
            ),
            text=f"kidney donor update {i}",
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module", params=WORKER_COUNTS)
def records(request):
    """Pipeline output for each worker count (parallel-equivalent)."""
    corpus, __ = CollectionPipeline().run(
        make_tweets(90), workers=request.param
    )
    return corpus.records


def trace_of_clean_write(records, tmp_path) -> list[str]:
    fs = FaultyFS(StorageFaultPlan.none())
    write_jsonl(records, tmp_path / "trace.jsonl", fs=fs)
    return fs.trace


class TestWriteChaosEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("fault", sorted(RATE_FAULTS))
    def test_rate_faults_are_invisible(self, records, tmp_path, fault, seed):
        baseline = tmp_path / "baseline.jsonl"
        write_jsonl(records, baseline)
        target = tmp_path / "corpus.jsonl"
        fs = FaultyFS(StorageFaultPlan(seed=seed, **RATE_FAULTS[fault]))
        write_jsonl(records, target, fs=fs)
        assert target.read_bytes() == baseline.read_bytes()
        assert verify_file(target).ok

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("fault", sorted(POINT_FAULTS))
    def test_point_faults_never_damage_the_old_corpus(
        self, records, tmp_path, fault, seed
    ):
        operation, field, failure = POINT_FAULTS[fault]
        baseline = tmp_path / "baseline.jsonl"
        write_jsonl(records, baseline)
        baseline_bytes = baseline.read_bytes()

        # The old corpus the faulted rewrite must not destroy.
        target = tmp_path / "corpus.jsonl"
        write_jsonl(records[: len(records) // 2], target)
        old_bytes = target.read_bytes()
        assert old_bytes != baseline_bytes

        trace = trace_of_clean_write(records, tmp_path)
        index = trace.index(operation)  # first occurrence: the data file's
        fs = FaultyFS(StorageFaultPlan(seed=seed, **{field: index}))
        with pytest.raises(failure):
            write_jsonl(records, target, fs=fs)
        assert target.read_bytes() == old_bytes  # intact, not torn

        # A clean retry (the process restarting) converges exactly.
        write_jsonl(records, target)
        assert target.read_bytes() == baseline_bytes
        assert verify_file(target).ok


class TestIncrementalFsyncLieRecovery:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_lost_acknowledged_writes_are_reprocessed(self, tmp_path, seed):
        tweets = make_tweets(18)
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        baseline = IncrementalCollector(baseline_dir / "corpus.jsonl")
        baseline.run(tweets, checkpoint_every=5)
        baseline_bytes = (baseline_dir / "corpus.jsonl").read_bytes()

        # Every fsync lies, then the power fails near the end of the
        # run: acknowledged corpus bytes evaporate while the checkpoint
        # may claim them.
        chaos_dir = tmp_path / "chaos"
        chaos_dir.mkdir()
        corpus_path = chaos_dir / "corpus.jsonl"
        probe = FaultyFS(StorageFaultPlan.none())
        IncrementalCollector(corpus_path, fs=probe).run(
            tweets, checkpoint_every=5
        )
        for path in sorted(chaos_dir.iterdir()):
            path.unlink()
        plan = StorageFaultPlan(
            seed=seed, fsync_lie_rate=1.0, crash_at=probe.syscalls - 1
        )
        with pytest.raises(SimulatedCrash):
            IncrementalCollector(corpus_path, fs=FaultyFS(plan)).run(
                tweets, checkpoint_every=5
            )

        # Resume on a healthy disk: the rewound checkpoint re-processes
        # the lost tweets and converges to the byte-identical corpus.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resumed = IncrementalCollector(corpus_path)
            resumed.run(tweets, checkpoint_every=5)
        assert corpus_path.read_bytes() == baseline_bytes
        assert verify_file(corpus_path).ok


class TestBitrotScrub:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("flips", (1, 4, 9))
    def test_scrub_detects_every_flip_and_drops_nothing(
        self, tmp_path, seed, flips
    ):
        path = tmp_path / "corpus.jsonl"
        corpus, __ = CollectionPipeline().run(make_tweets(60))
        write_jsonl(corpus.records, path)
        pristine_lines = path.read_bytes().split(b"\n")[:-1]

        offsets = flip_bits(str(path), seed=seed, flips=flips)
        assert offsets  # the corpus is large enough to host the flips
        damaged_lines = path.read_bytes().split(b"\n")[:-1]
        expected_bad = tuple(
            i + 1
            for i, (a, b) in enumerate(zip(pristine_lines, damaged_lines))
            if a != b
        )

        result = scrub_file(path)
        assert result.status == "quarantined"
        # 100% detection: exactly the rotten lines, no false positives.
        assert result.corrupt_lines == expected_bad
        # Nothing silently dropped: survivors + dead-letter == original.
        survivors = path.read_bytes().split(b"\n")[:-1]
        dead = [
            json.loads(line)
            for line in quarantine_path(path)
            .read_text(encoding="utf-8")
            .splitlines()
        ]
        assert len(survivors) + len(dead) == len(pristine_lines)
        assert [entry["line"] for entry in dead] == list(expected_bad)
        assert survivors == [
            line
            for i, line in enumerate(damaged_lines)
            if i + 1 not in expected_bad
        ]
        # After quarantine the file verifies clean again.
        assert scrub_file(path).status == "clean"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_scrub_repairs_from_journaled_replica(self, tmp_path, seed):
        path = tmp_path / "corpus.jsonl"
        replica_dir = tmp_path / "journal"
        replica_dir.mkdir()
        corpus, __ = CollectionPipeline().run(make_tweets(40))
        write_jsonl(corpus.records, path)
        (replica_dir / path.name).write_bytes(path.read_bytes())

        flip_bits(str(path), seed=seed, flips=3)
        result = scrub_file(path, repair_from=replica_dir)
        assert result.status == "repaired"
        assert scrub_file(path).status == "clean"
        assert not quarantine_path(path).exists()
