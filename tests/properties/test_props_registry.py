"""Property-based tests for the registry simulation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.registry.config import OrganFlow, RegistryConfig
from repro.registry.model import TransplantRegistry, _allocate_discrete


@st.composite
def registry_config(draw):
    flows = tuple(
        OrganFlow(
            initial_waitlist=draw(st.integers(0, 2000)),
            annual_additions=draw(st.integers(0, 3000)),
            annual_mortality_rate=draw(st.floats(0.0, 0.5)),
            annual_other_removals_rate=draw(st.floats(0.0, 0.5)),
            donor_yield=draw(st.floats(0.0, 2.5)),
        )
        for __ in range(6)
    )
    local = draw(st.floats(0.0, 0.8))
    regional = draw(st.floats(0.0, min(0.9 - local, 0.5)))
    return RegistryConfig(
        flows=flows,
        annual_deceased_donors=draw(st.integers(0, 3000)),
        local_allocation_share=local,
        regional_allocation_share=regional,
        months=draw(st.integers(1, 6)),
        seed=draw(st.integers(0, 100)),
    )


class TestRegistryProperties:
    @given(registry_config())
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_nonnegativity(self, config):
        outcome = TransplantRegistry(config).run()
        for array in (
            outcome.additions, outcome.transplants, outcome.imports,
            outcome.regional_imports, outcome.local_transplants,
            outcome.donor_grafts, outcome.deaths, outcome.removals,
            outcome.final_waitlist,
        ):
            assert (array >= -1e-9).all()
        # Flow balance per organ.
        initial = np.array([flow.initial_waitlist for flow in config.flows])
        balance = (
            initial
            + outcome.additions.sum(axis=0)
            - outcome.transplants.sum(axis=0)
            - outcome.deaths.sum(axis=0)
            - outcome.removals.sum(axis=0)
        )
        np.testing.assert_allclose(
            balance, outcome.final_waitlist.sum(axis=0), atol=1e-6
        )
        # No organ transplanted beyond recovered supply.
        assert (
            outcome.transplants.sum(axis=0)
            <= outcome.donor_grafts.sum(axis=0) + 1e-9
        ).all()
        # Import decomposition.
        np.testing.assert_allclose(
            outcome.transplants,
            outcome.local_transplants + outcome.imports,
            atol=1e-9,
        )
        assert (outcome.regional_imports <= outcome.imports + 1e-9).all()


class TestAllocateDiscreteProperties:
    @given(
        supply=st.integers(0, 500),
        demand=st.lists(st.integers(0, 60), min_size=1, max_size=40),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_placement_invariants(self, supply, demand, seed):
        demand_arr = np.array(demand, dtype=float)
        rng = np.random.default_rng(seed)
        placed = _allocate_discrete(supply, demand_arr, rng)
        assert (placed >= 0).all()
        assert (placed <= demand_arr).all()
        assert placed.sum() <= supply + 1e-9

    @given(
        demand=st.lists(st.integers(1, 60), min_size=1, max_size=30),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_ample_supply_fills_all_demand(self, demand, seed):
        demand_arr = np.array(demand, dtype=float)
        rng = np.random.default_rng(seed)
        placed = _allocate_discrete(int(demand_arr.sum()), demand_arr, rng)
        np.testing.assert_allclose(placed, demand_arr)

    @given(
        supply=st.integers(1, 200),
        demand=st.lists(st.integers(5, 60), min_size=2, max_size=20),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_scarce_supply_fully_placed(self, supply, demand, seed):
        """When demand exceeds supply, no graft may be wasted."""
        demand_arr = np.array(demand, dtype=float)
        if supply >= demand_arr.sum():
            supply = int(demand_arr.sum()) - 1
        if supply <= 0:
            return
        rng = np.random.default_rng(seed)
        placed = _allocate_discrete(supply, demand_arr, rng)
        # Lossless allocation: a scarce supply is fully placed.
        assert placed.sum() == supply
