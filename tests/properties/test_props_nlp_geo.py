"""Property-based tests for NLP and geo substrates."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.geocoder import Geocoder
from repro.nlp.matcher import OrganMatcher
from repro.nlp.tokenize import TokenKind, tokenize
from repro.organs import ALIASES

_GEOCODER = Geocoder()
_MATCHER = OrganMatcher()

tweet_text = st.text(
    alphabet=string.ascii_letters + string.digits + " #@.,'!-:/🙏❤🌍",
    max_size=200,
)


class TestTokenizerProperties:
    @given(tweet_text)
    @settings(max_examples=150)
    def test_never_raises_and_types_consistent(self, text):
        for token in tokenize(text):
            assert token.text
            assert isinstance(token.kind, TokenKind)
            if token.kind is TokenKind.WORD:
                assert token.text == token.text.lower()

    @given(tweet_text)
    @settings(max_examples=100)
    def test_idempotent_via_cache(self, text):
        assert tokenize(text) == tokenize(text)

    @given(st.lists(st.sampled_from(sorted(ALIASES)), min_size=1, max_size=5))
    def test_alias_words_tokenize_as_words(self, aliases):
        text = " ".join(aliases)
        tokens = tokenize(text)
        assert [t.text for t in tokens] == aliases


class TestMatcherProperties:
    @given(tweet_text)
    @settings(max_examples=150)
    def test_never_raises_counts_nonnegative(self, text):
        counts = _MATCHER.mentions(text)
        assert all(count > 0 for count in counts.values())

    @given(st.lists(st.sampled_from(sorted(ALIASES)), min_size=1, max_size=6))
    def test_planted_aliases_all_recovered(self, aliases):
        text = " ".join(aliases)
        counts = _MATCHER.mentions(text)
        assert sum(counts.values()) == len(aliases)
        expected = {ALIASES[alias] for alias in aliases}
        assert set(counts) == expected

    @given(tweet_text, tweet_text)
    @settings(max_examples=80)
    def test_space_concatenation_additive(self, a, b):
        """Whitespace joins cannot create or destroy mentions: counts over
        "a b" equal the sum of counts over a and over b."""
        combined = _MATCHER.mentions(a + " " + b)
        separate = _MATCHER.mentions(a) + _MATCHER.mentions(b)
        assert combined == separate


class TestGeocoderProperties:
    @given(st.text(max_size=120))
    @settings(max_examples=200)
    def test_never_raises(self, text):
        match = _GEOCODER.geocode(text)
        assert 0.0 <= match.confidence <= 1.0
        if match.state is not None:
            assert match.country == "US"

    @given(st.text(max_size=80))
    @settings(max_examples=100)
    def test_deterministic(self, text):
        assert _GEOCODER.geocode(text) == _GEOCODER.geocode(text)

    @given(st.sampled_from([s.name for s in __import__("repro.geo.gazetteer", fromlist=["STATES"]).STATES]))
    def test_every_state_name_geocodes_to_itself(self, name):
        from repro.geo.gazetteer import state_by_name

        match = _GEOCODER.geocode(name)
        assert match.state == state_by_name(name).abbrev
