"""Property-based tests for the core characterization math."""

from datetime import datetime, timezone

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import aggregate
from repro.core.attention import build_attention_matrix
from repro.core.membership import by_most_cited_organ, by_region
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.geo.geocoder import GeoMatch
from repro.organs import ORGANS
from repro.twitter.models import Tweet, UserProfile

_STATES = ("KS", "MA", "CA", "TX")


@st.composite
def random_corpus(draw):
    """A random small corpus: users with random states and mention counts."""
    n_users = draw(st.integers(1, 12))
    records = []
    tweet_id = 0
    for user_id in range(n_users):
        state = draw(st.sampled_from(_STATES))
        n_tweets = draw(st.integers(1, 3))
        for __ in range(n_tweets):
            mentions = {}
            n_organs = draw(st.integers(1, 3))
            organs = draw(
                st.lists(
                    st.sampled_from(ORGANS), min_size=n_organs,
                    max_size=n_organs, unique=True,
                )
            )
            for organ in organs:
                mentions[organ] = draw(st.integers(1, 5))
            records.append(
                CollectedTweet(
                    tweet=Tweet(
                        tweet_id=tweet_id,
                        user=UserProfile(
                            user_id=user_id, screen_name=f"u{user_id}"
                        ),
                        text="t",
                        created_at=datetime(2015, 6, 1, tzinfo=timezone.utc),
                    ),
                    location=GeoMatch("US", state, 0.95, "test"),
                    mentions=mentions,
                )
            )
            tweet_id += 1
    return TweetCorpus(records)


class TestAttentionProperties:
    @given(random_corpus())
    @settings(max_examples=60, deadline=None)
    def test_rows_are_distributions(self, corpus):
        attention = build_attention_matrix(corpus)
        np.testing.assert_allclose(attention.normalized.sum(axis=1), 1.0)
        assert np.all(attention.normalized >= 0)

    @given(random_corpus())
    @settings(max_examples=60, deadline=None)
    def test_counts_match_user_slices(self, corpus):
        attention = build_attention_matrix(corpus)
        for row, user_id in enumerate(attention.user_ids):
            user = corpus.user_slice(user_id)
            for organ in ORGANS:
                assert attention.counts[row, organ.index] == float(
                    user.mention_counts.get(organ, 0)
                )

    @given(random_corpus())
    @settings(max_examples=40, deadline=None)
    def test_most_cited_is_a_maximal_organ(self, corpus):
        attention = build_attention_matrix(corpus)
        choices = attention.most_cited()
        for row in range(attention.n_users):
            row_values = attention.normalized[row]
            assert row_values[choices[row]] >= row_values.max() - 1e-12


class TestAggregationProperties:
    @given(random_corpus())
    @settings(max_examples=60, deadline=None)
    def test_eq3_equals_group_means(self, corpus):
        """(LᵀL)⁻¹LᵀÛ == per-group mean for one-hot memberships."""
        attention = build_attention_matrix(corpus)
        membership = by_most_cited_organ(attention)
        result = aggregate(attention, membership)
        assignments = membership.assignments
        for index, label in enumerate(result.group_labels):
            organ_index = next(
                o.index for o in ORGANS if o.value == label
            )
            members = np.flatnonzero(assignments == organ_index)
            expected = attention.normalized[members].mean(axis=0)
            np.testing.assert_allclose(result.matrix[index], expected, atol=1e-12)

    @given(random_corpus())
    @settings(max_examples=60, deadline=None)
    def test_k_rows_are_distributions(self, corpus):
        attention = build_attention_matrix(corpus)
        for membership in (by_most_cited_organ(attention), by_region(attention)):
            result = aggregate(attention, membership)
            np.testing.assert_allclose(result.matrix.sum(axis=1), 1.0)
            assert np.all(result.matrix >= -1e-12)

    @given(random_corpus())
    @settings(max_examples=40, deadline=None)
    def test_global_mean_preserved(self, corpus):
        """Size-weighted mean of K rows equals the grand mean of Û
        (aggregation neither creates nor destroys attention mass)."""
        attention = build_attention_matrix(corpus)
        membership = by_region(attention)
        result = aggregate(attention, membership)
        sizes = np.array(result.group_sizes, dtype=float)
        weighted = (sizes[:, None] * result.matrix).sum(axis=0) / sizes.sum()
        grand = attention.normalized.mean(axis=0)
        np.testing.assert_allclose(weighted, grand, atol=1e-12)


class TestMembershipProperties:
    @given(random_corpus())
    @settings(max_examples=40, deadline=None)
    def test_indicator_rows_one_hot_or_zero(self, corpus):
        attention = build_attention_matrix(corpus)
        for membership in (by_most_cited_organ(attention), by_region(attention)):
            indicator = membership.indicator_matrix()
            row_sums = indicator.sum(axis=1)
            assert np.all((row_sums == 0.0) | (row_sums == 1.0))

    @given(random_corpus())
    @settings(max_examples=40, deadline=None)
    def test_group_sizes_total_assigned(self, corpus):
        attention = build_attention_matrix(corpus)
        membership = by_region(attention)
        assert membership.group_sizes().sum() == membership.n_assigned
