"""Property-based tests for the network substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.cascades import simulate_cascade
from repro.network.graph import GraphConfig, build_follower_graph
from repro.organs import ORGANS
from repro.synth.config import PopulationConfig, SynthConfig
from repro.synth.world import SyntheticWorld


@pytest.fixture(scope="module")
def graph():
    world = SyntheticWorld(
        SynthConfig(population=PopulationConfig(n_users=600,
                                                us_fraction=0.6), seed=8)
    )
    return build_follower_graph(world, GraphConfig(seed=8))


class TestCascadeProperties:
    @given(
        seed_count=st.integers(1, 10),
        organ=st.sampled_from(ORGANS),
        rng_seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_cascade_invariants(self, graph, seed_count, organ, rng_seed):
        rng = np.random.default_rng(rng_seed)
        nodes = list(graph.graph.nodes)
        seeds = [int(u) for u in
                 np.random.default_rng(rng_seed + 1).choice(
                     nodes, size=seed_count, replace=False)]
        cascade = simulate_cascade(graph, seeds, organ, rng)
        # Seeds always included; reach bounded by population.
        assert set(seeds) <= cascade.activated
        assert seed_count <= cascade.size <= graph.n_users
        # Depth 0 iff nothing beyond the seeds activated.
        if cascade.size == seed_count:
            assert cascade.depth == 0
        # Every non-seed activation is reachable from a seed.
        assert cascade.depth <= graph.n_users

    @given(rng_seed=st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_superset_seeds_weakly_dominate(self, graph, rng_seed):
        """Adding a seed can only grow the (same-randomness) expectation;
        checked on Monte-Carlo means with shared streams."""
        top = graph.top_audiences(3)
        small = np.mean([
            simulate_cascade(graph, top[:2], ORGANS[0],
                             np.random.default_rng(rng_seed + i)).size
            for i in range(8)
        ])
        large = np.mean([
            simulate_cascade(graph, top, ORGANS[0],
                             np.random.default_rng(rng_seed + i)).size
            for i in range(8)
        ])
        assert large >= small - 1e-9

    @given(organ=st.sampled_from(ORGANS))
    @settings(max_examples=12, deadline=None)
    def test_activation_probability_respects_bounds(self, graph, organ):
        """With base probability 1.0 every exposed follower with positive
        gated probability activates: the cascade covers the full
        out-component of the seeds."""
        import networkx as nx

        seeds = graph.top_audiences(2)
        cascade = simulate_cascade(
            graph, seeds, organ, np.random.default_rng(0),
            base_probability=1.0,
        )
        component: set[int] = set(seeds)
        for seed_node in seeds:
            component |= nx.descendants(graph.graph, seed_node)
        # gated probability = 1.0 × (0.5 + attention) may exceed 1 → all
        # activate; attention ≥ 0 means probability ≥ 0.5, so full
        # coverage is not guaranteed — but activated ⊆ component always.
        assert cascade.activated <= component
