"""Compute-chaos equivalence properties.

The supervised pool's headline guarantee, one layer below the transport:
for every fan-out site — the sharded pipeline, K-Means restarts, and the
k-sweep — the output under injected *worker* faults (crashes, hangs,
exception storms, slow tasks) is byte-identical to the serial,
fault-free run, for any worker count and any seed.  Poison tasks never
produce silent gaps: the pipeline degrades explicitly via ``RunHealth``
and the clustering sites refuse to fit at all.
"""

import json

import numpy as np
import pytest

from repro.cluster.kmeans import KMeans
from repro.config import UserClusteringConfig
from repro.core.attention import AttentionMatrix
from repro.core.user_clusters import sweep_k
from repro.errors import ClusteringError
from repro.faults.compute import WorkerFaultPlan
from repro.pipeline.runner import CollectionPipeline
from repro.supervise import SupervisorPolicy
from repro.synth.scenarios import paper2016_scenario
from repro.synth.world import SyntheticWorld

SEEDS = (3, 11, 42)
WORKER_COUNTS = (1, 2, 4)

#: Retries must out-number faulted attempts (ensure_supervisable).
CHAOS_POLICY = SupervisorPolicy(max_retries=2)


def make_firehose(seed: int) -> list:
    world = SyntheticWorld(paper2016_scenario(scale=0.004, seed=seed))
    return list(world.firehose())


def corpus_bytes(corpus) -> bytes:
    return "\n".join(
        json.dumps(record.to_dict(), ensure_ascii=False)
        for record in corpus.records
    ).encode("utf-8")


def make_attention(seed: int, users: int = 120) -> AttentionMatrix:
    rng = np.random.default_rng(seed)
    counts = rng.integers(1, 20, size=(users, 6)).astype(float)
    normalized = counts / counts.sum(axis=1, keepdims=True)
    return AttentionMatrix(
        user_ids=tuple(range(users)),
        states=tuple(["CA"] * users),
        counts=counts,
        normalized=normalized,
    )


class TestPipelineUnderWorkerChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_chaos_corpus_is_byte_identical_to_serial(self, seed, workers):
        source = make_firehose(seed)
        serial_corpus, __ = CollectionPipeline().run(source)
        corpus, report = CollectionPipeline().run(
            source,
            workers=workers,
            supervisor=CHAOS_POLICY,
            worker_faults=WorkerFaultPlan.chaos(seed=seed),
        )
        assert corpus_bytes(corpus) == corpus_bytes(serial_corpus)
        assert report.compute is not None
        assert not report.compute.degraded

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_counters_match_serial(self, seed):
        source = make_firehose(seed)
        __, serial_report = CollectionPipeline().run(source)
        __, report = CollectionPipeline().run(
            source,
            workers=2,
            supervisor=CHAOS_POLICY,
            worker_faults=WorkerFaultPlan.chaos(seed=seed),
        )
        assert report.retained == serial_report.retained
        assert report.collected == serial_report.collected
        assert report.us_located == serial_report.us_located

    def test_hung_shard_is_recovered_by_the_deadline(self):
        source = make_firehose(SEEDS[0])
        serial_corpus, __ = CollectionPipeline().run(source)
        corpus, report = CollectionPipeline().run(
            source,
            workers=2,
            supervisor=SupervisorPolicy(max_retries=2, task_timeout=15.0),
            worker_faults=WorkerFaultPlan(
                seed=1, hang_rate=1.0, hang_seconds=60.0,
                max_faulted_attempts=1,
            ),
        )
        assert corpus_bytes(corpus) == corpus_bytes(serial_corpus)
        assert report.compute.worker_timeouts >= 1

    def test_double_chaos_both_layers_at_once(self):
        """Transport faults (parent) plus worker faults (pool) together
        still reproduce the clean serial corpus."""
        from repro.twitter.faults import FaultPlan

        source = make_firehose(SEEDS[1])
        serial_corpus, __ = CollectionPipeline().run(source)
        corpus, report = CollectionPipeline().run(
            source,
            fault_plan=FaultPlan.chaos(seed=7),
            workers=2,
            supervisor=CHAOS_POLICY,
            worker_faults=WorkerFaultPlan.chaos(seed=7),
        )
        assert corpus_bytes(corpus) == corpus_bytes(serial_corpus)
        assert report.reliability is not None
        assert report.compute is not None

    def test_poison_shard_degrades_explicitly_and_names_the_shard(self):
        source = make_firehose(SEEDS[0])
        serial_corpus, __ = CollectionPipeline().run(source)
        corpus, report = CollectionPipeline().run(
            source,
            workers=4,
            supervisor=SupervisorPolicy(max_retries=1),
            worker_faults=WorkerFaultPlan(seed=1, poison_tasks=(1,)),
        )
        health = report.compute
        assert health.degraded
        assert health.quarantined == 1
        assert health.dead_letters[0].label == "shard 1"
        assert any(
            "shard 1" in line for line in health.summary_lines()
        )
        # The gap is real (records lost) but never silent.
        assert len(corpus.records) < len(serial_corpus.records)


class TestKMeansUnderWorkerChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_chaos_fit_equals_serial_fit(self, seed, workers):
        matrix = make_attention(seed).normalized
        serial = KMeans(k=6, n_init=8, seed=seed).fit(matrix)
        chaotic = KMeans(
            k=6, n_init=8, seed=seed, workers=workers,
            supervisor=CHAOS_POLICY,
            fault_plan=WorkerFaultPlan.chaos(seed=seed),
        ).fit(matrix)
        assert chaotic.inertia == serial.inertia
        assert np.array_equal(chaotic.labels, serial.labels)
        assert np.array_equal(chaotic.centers, serial.centers)

    def test_hang_recovery_preserves_the_fit(self):
        matrix = make_attention(SEEDS[0]).normalized
        serial = KMeans(k=6, n_init=8, seed=0).fit(matrix)
        recovered = KMeans(
            k=6, n_init=8, seed=0, workers=2,
            supervisor=SupervisorPolicy(max_retries=2, task_timeout=10.0),
            fault_plan=WorkerFaultPlan(
                seed=2, hang_rate=0.8, hang_seconds=60.0,
                max_faulted_attempts=1,
            ),
        ).fit(matrix)
        assert recovered.inertia == serial.inertia

    def test_poisoned_restart_chunk_raises_never_degrades(self):
        matrix = make_attention(SEEDS[0]).normalized
        with pytest.raises(ClusteringError, match="quarantined"):
            KMeans(
                k=6, n_init=8, seed=0, workers=2,
                supervisor=SupervisorPolicy(max_retries=1),
                fault_plan=WorkerFaultPlan(seed=2, poison_tasks=(0,)),
            ).fit(matrix)


class TestSweepUnderWorkerChaos:
    CONFIG = UserClusteringConfig(n_init=2, max_iter=60)
    KS = (6, 7, 8)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_chaos_sweep_equals_serial_sweep(self, seed, workers):
        attention = make_attention(seed)
        serial = sweep_k(attention, self.KS, self.CONFIG)
        chaotic = sweep_k(
            attention, self.KS, self.CONFIG, workers=workers,
            supervisor=CHAOS_POLICY,
            worker_faults=WorkerFaultPlan.chaos(seed=seed),
        )
        assert chaotic == serial

    def test_poisoned_candidate_raises_never_leaves_a_hole(self):
        attention = make_attention(SEEDS[0])
        with pytest.raises(ClusteringError, match="k=7"):
            sweep_k(
                attention, self.KS, self.CONFIG, workers=2,
                supervisor=SupervisorPolicy(max_retries=1),
                worker_faults=WorkerFaultPlan(seed=2, poison_tasks=(1,)),
            )
