"""Load-chaos properties: no silent loss, determinism, bounded latency.

The serving contract under any seeded load chaos:

1. **Exact accounting** — every submitted request (file requests, storm
   clones, malformed lines) terminates exactly once as completed,
   rejected, expired, or dead-lettered.
2. **Byte-identical replay** — the response stream is a pure function of
   ``(seed, request file)``.
3. **Health is never shed** — the critical class always gets an answer.
4. **No hang past the deadline** — a completed answer always lands
   inside its request's budget, open breaker or not.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dataset.io import write_jsonl
from repro.faults.load import LoadFaultPlan
from repro.serve import (
    Outcome,
    QueryService,
    read_requests_jsonl,
    write_responses_jsonl,
)
from tests.serve.conftest import SERVE_STATES, build_serve_corpus

SEEDS = (3, 11, 42)
DEADLINE_BUDGET = 4.0
N_REQUESTS = 60


@pytest.fixture(scope="module")
def chaos_run_dir(tmp_path_factory: pytest.TempPathFactory) -> Path:
    run_dir = tmp_path_factory.mktemp("serve_chaos_run")
    write_jsonl(build_serve_corpus(), run_dir / "corpus.jsonl")
    return run_dir


@pytest.fixture(scope="module")
def request_file(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """A mixed request schedule, including malformed lines."""
    kinds = ("state_signature", "relative_risk", "cluster_profile", "health")
    lines = []
    for i in range(N_REQUESTS):
        kind = kinds[i % len(kinds)]
        params: dict[str, str] = {}
        if kind in ("state_signature", "relative_risk"):
            params["state"] = SERVE_STATES[i % len(SERVE_STATES)]
        if kind == "cluster_profile":
            params["cluster"] = str(i % 6)
        lines.append(
            json.dumps(
                {
                    "id": f"r{i}",
                    "kind": kind,
                    "arrival": round(i * 0.05, 9),
                    "params": params,
                    "deadline": DEADLINE_BUDGET,
                }
            )
        )
        if i % 20 == 7:
            lines.append("{ torn line")
    path = tmp_path_factory.mktemp("serve_requests") / "requests.jsonl"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def run_serve(run_dir: Path, request_file: Path, seed: int):
    requests, malformed = read_requests_jsonl(request_file)
    service = QueryService(run_dir, plan=LoadFaultPlan.chaos(seed=seed))
    return service, service.serve(requests, malformed)


def expected_arrivals(request_file: Path, seed: int) -> dict[str, float]:
    """Reconstruct every submission's arrival from the public plan API."""
    requests, __ = read_requests_jsonl(request_file)
    plan = LoadFaultPlan.chaos(seed=seed)
    arrivals: dict[str, float] = {}
    for index, base in enumerate(requests):
        arrivals[base.request_id] = base.arrival
        for clone_index, clone in enumerate(plan.storm_for(index)):
            arrivals[f"{base.request_id}~storm{clone_index}"] = (
                base.arrival + clone.offset
            )
    return arrivals


class TestNoSilentLoss:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_request_accounted_exactly_once(
        self, chaos_run_dir, request_file, seed
    ):
        __, result = run_serve(chaos_run_dir, request_file, seed)
        report = result.report
        assert report.accounted
        assert (
            report.completed + report.shed + report.expired
            + report.dead_lettered
            == report.submitted
            == len(result.responses)
        )
        # Exactly one response per submission — no duplicates either.
        ids = [response.request_id for response in result.responses]
        assert len(ids) == len(set(ids))
        arrivals = expected_arrivals(request_file, seed)
        malformed = [i for i in ids if i.startswith("line-")]
        assert sorted(set(ids) - set(malformed)) == sorted(arrivals)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_health_is_never_shed(self, chaos_run_dir, request_file, seed):
        __, result = run_serve(chaos_run_dir, request_file, seed)
        requests, __ = read_requests_jsonl(request_file)
        health_ids = {
            req.request_id for req in requests if req.kind == "health"
        }
        health_responses = [
            response
            for response in result.responses
            if response.request_id.split("~")[0] in health_ids
        ]
        assert health_responses
        assert all(
            response.outcome is not Outcome.REJECTED
            for response in health_responses
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_completions_always_land_inside_the_deadline(
        self, chaos_run_dir, request_file, seed
    ):
        """Open breaker, slow loads, storms — never a hang past expiry."""
        __, result = run_serve(chaos_run_dir, request_file, seed)
        arrivals = expected_arrivals(request_file, seed)
        for response in result.responses:
            if response.outcome is not Outcome.COMPLETED:
                continue
            arrival = arrivals[response.request_id]
            assert response.finished_at < arrival + DEADLINE_BUDGET

    @pytest.mark.parametrize("seed", SEEDS)
    def test_expired_requests_carry_no_partial_payload(
        self, chaos_run_dir, request_file, seed
    ):
        __, result = run_serve(chaos_run_dir, request_file, seed)
        for response in result.responses:
            if response.outcome is Outcome.COMPLETED:
                assert response.payload is not None
            else:
                assert response.payload is None


class TestDeterministicReplay:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_response_stream_is_byte_identical(
        self, chaos_run_dir, request_file, seed, tmp_path
    ):
        streams = []
        for attempt in range(2):
            __, result = run_serve(chaos_run_dir, request_file, seed)
            path = tmp_path / f"responses-{seed}-{attempt}.jsonl"
            write_responses_jsonl(result.responses, path)
            streams.append(path.read_bytes())
        assert streams[0] == streams[1]

    def test_different_seeds_exercise_different_schedules(
        self, chaos_run_dir, request_file
    ):
        reports = [
            run_serve(chaos_run_dir, request_file, seed)[1].report.to_dict()
            for seed in SEEDS
        ]
        assert any(reports[0] != other for other in reports[1:])
