"""Property tests: the automaton hot path ≡ the naive reference scans.

Three equivalences, each locked over randomized inputs:

* :meth:`TermVocabulary.present` ≡ :func:`present_terms` for randomized
  vocabularies with deliberately overlapping terms (``organ`` inside
  ``organdonor``) against texts that glue those terms into hashtags;
* :meth:`TrackFilter.matches` ≡ :meth:`TrackFilter.matches_naive` on the
  production track phrases;
* :meth:`OrganMatcher.mentions` ≡ :meth:`OrganMatcher.mentions_naive`.

The randomized-vocabulary suite runs under three fixed seeds so a
regression reproduces deterministically from the failing test id alone.
"""

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CollectionConfig
from repro.nlp.automaton import TermVocabulary
from repro.nlp.keywords import build_query_set, track_phrases
from repro.nlp.matcher import OrganMatcher
from repro.nlp.tokenize import present_terms
from repro.twitter.stream import TrackFilter

_MATCHER = OrganMatcher()
_CONFIG = CollectionConfig()
_TRACK = TrackFilter(
    track_phrases(
        build_query_set(_CONFIG.context_terms, _CONFIG.subject_terms)
    )
)

tweet_text = st.text(
    alphabet=string.ascii_letters + string.digits + " #@.,'!-:/🙏❤🌍",
    max_size=200,
)

#: Overlapping stems: every prefix relation the automaton's failure
#: links must handle (term inside term, term as prefix, term as suffix).
_STEMS = (
    "organ", "organdonor", "organdonation", "donor", "donate",
    "donatelife", "kidney", "kidneydonor", "heart", "hearttransplant",
    "art", "ran", "transplant",
)


def _random_vocabulary(rng: random.Random) -> list[str]:
    size = rng.randint(2, 9)
    return rng.sample(_STEMS, size)


def _random_text(rng: random.Random, vocabulary: list[str]) -> str:
    """Text mixing plain terms, glued hashtags, compounds, and noise."""
    pieces = []
    for __ in range(rng.randint(1, 12)):
        roll = rng.random()
        term = rng.choice(vocabulary)
        if roll < 0.3:
            pieces.append(term)
        elif roll < 0.5:
            # Glued hashtag: two terms fused — the substring case.
            pieces.append(f"#{term}{rng.choice(vocabulary)}")
        elif roll < 0.6:
            pieces.append(f"#{term}")
        elif roll < 0.7:
            pieces.append(f"{term}-{rng.choice(vocabulary)}")
        elif roll < 0.8:
            # Term embedded in a longer plain word: must NOT match.
            pieces.append(f"{term}ized")
        else:
            pieces.append(
                "".join(
                    rng.choices(string.ascii_lowercase, k=rng.randint(1, 8))
                )
            )
    return " ".join(pieces)


class TestVocabularyEquivalence:
    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_randomized_vocabularies_match_naive(self, seed):
        rng = random.Random(seed)
        for __ in range(150):
            vocabulary = _random_vocabulary(rng)
            compiled = TermVocabulary(vocabulary)
            for __ in range(10):
                text = _random_text(rng, vocabulary)
                assert set(compiled.present(text)) == present_terms(
                    text, vocabulary
                ), f"divergence on vocabulary={vocabulary!r} text={text!r}"

    @given(tweet_text)
    @settings(max_examples=200)
    def test_arbitrary_text_matches_naive(self, text):
        vocabulary = ("organ", "organdonor", "donor", "kidney", "be")
        compiled = TermVocabulary(vocabulary)
        assert set(compiled.present(text)) == present_terms(text, vocabulary)

    def test_overlapping_terms_in_glued_hashtag(self):
        vocabulary = ("organ", "organdonor", "donor")
        compiled = TermVocabulary(vocabulary)
        assert compiled.present("#organdonor") == frozenset(vocabulary)


class TestTrackFilterEquivalence:
    @given(tweet_text)
    @settings(max_examples=200)
    def test_matches_equals_naive(self, text):
        assert _TRACK.matches(text) == _TRACK.matches_naive(text)

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_randomized_texts_over_production_phrases(self, seed):
        rng = random.Random(seed)
        vocabulary = list(_STEMS)
        for __ in range(300):
            text = _random_text(rng, vocabulary)
            assert _TRACK.matches(text) == _TRACK.matches_naive(text), (
                f"divergence on text={text!r}"
            )


class TestMatcherEquivalence:
    @given(tweet_text)
    @settings(max_examples=200)
    def test_mentions_equals_naive(self, text):
        assert _MATCHER.mentions(text) == _MATCHER.mentions_naive(text)

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_randomized_organ_texts(self, seed):
        rng = random.Random(seed)
        vocabulary = ["kidney", "liver", "heart", "lung", "pancreas", "cornea"]
        for __ in range(300):
            text = _random_text(rng, vocabulary)
            assert _MATCHER.mentions(text) == _MATCHER.mentions_naive(text), (
                f"divergence on text={text!r}"
            )
