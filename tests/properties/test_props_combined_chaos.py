"""All three chaos layers at once: transport + compute + disk.

Each layer's equivalence property is proved in isolation by its own
suite (``test_props_chaos``, ``test_props_compute_chaos``,
``test_props_storage_chaos``).  This suite arms all of them in the same
``repro collect`` run — faulted stream client feeding a faulted worker
pool persisting through a faulted filesystem — and asserts the combined
guarantee: the on-disk corpus is byte-identical to the serial,
fault-free run for every worker count × seed, with every layer's
degradation reported, never silent.
"""

import pytest

from repro.dataset.io import write_jsonl
from repro.faults.compute import WorkerFaultPlan
from repro.faults.storage import StorageFaultPlan
from repro.pipeline.runner import CollectionPipeline
from repro.storage.fs import FaultyFS
from repro.storage.manifest import verify_file
from repro.supervise import SupervisorPolicy
from repro.synth.scenarios import paper2016_scenario
from repro.synth.world import SyntheticWorld
from repro.twitter.faults import FaultPlan

SEEDS = (3, 11, 42)
WORKER_COUNTS = (1, 2, 4)

#: Retries must out-number faulted attempts (ensure_supervisable).
CHAOS_POLICY = SupervisorPolicy(max_retries=2)


def make_firehose(seed: int) -> list:
    world = SyntheticWorld(paper2016_scenario(scale=0.004, seed=seed))
    return list(world.firehose())


class TestTripleChaosEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_corpus_bytes_survive_all_three_layers(
        self, tmp_path, seed, workers
    ):
        source = make_firehose(seed)

        baseline = tmp_path / "baseline.jsonl"
        serial_corpus, __ = CollectionPipeline().run(source)
        write_jsonl(serial_corpus.records, baseline)

        corpus, report = CollectionPipeline().run(
            source,
            fault_plan=FaultPlan.chaos(seed=seed),
            workers=workers,
            supervisor=CHAOS_POLICY,
            worker_faults=WorkerFaultPlan.chaos(seed=seed),
        )
        target = tmp_path / "corpus.jsonl"
        fs = FaultyFS(StorageFaultPlan.chaos(seed=seed))
        write_jsonl(corpus.records, target, fs=fs)

        assert target.read_bytes() == baseline.read_bytes()
        assert verify_file(target).ok

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_layer_reports_what_it_survived(self, tmp_path, seed):
        source = make_firehose(seed)
        corpus, report = CollectionPipeline().run(
            source,
            fault_plan=FaultPlan.chaos(seed=seed),
            workers=2,
            supervisor=CHAOS_POLICY,
            worker_faults=WorkerFaultPlan.chaos(seed=seed),
        )
        target = tmp_path / "corpus.jsonl"
        fs = FaultyFS(StorageFaultPlan.chaos(seed=seed))
        write_jsonl(corpus.records, target, fs=fs)

        assert report.reliability is not None  # transport layer spoke
        assert report.compute is not None  # pool layer spoke
        assert not report.compute.degraded
        # The faulty filesystem logged its injections (possibly zero for
        # an unlucky seed, but the log itself must exist and render).
        assert fs.injected.summary_lines()
