"""Property-based tests for the clustering substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.cluster.distances import (
    bhattacharyya_distance,
    hellinger_distance,
    pairwise_distances,
)
from repro.cluster.kmeans import KMeans
from repro.cluster.silhouette import silhouette_samples
from repro.cluster.agglomerative import AgglomerativeClustering


@st.composite
def distribution(draw, n=6):
    raw = draw(
        npst.arrays(
            np.float64, n,
            elements=st.floats(min_value=1e-6, max_value=1.0),
        )
    )
    return raw / raw.sum()


@st.composite
def distribution_matrix(draw, max_rows=12, n=6):
    m = draw(st.integers(2, max_rows))
    rows = [draw(distribution(n)) for __ in range(m)]
    return np.array(rows)


class TestDistanceProperties:
    @given(distribution(), distribution())
    def test_bhattacharyya_symmetric_nonnegative(self, p, q):
        d_pq = bhattacharyya_distance(p, q)
        assert d_pq >= 0
        assert abs(d_pq - bhattacharyya_distance(q, p)) < 1e-12

    @given(distribution())
    def test_bhattacharyya_identity(self, p):
        assert bhattacharyya_distance(p, p) < 1e-7

    @given(distribution(), distribution())
    def test_hellinger_bounded(self, p, q):
        assert 0.0 <= hellinger_distance(p, q) <= 1.0

    @given(distribution(), distribution(), distribution())
    @settings(max_examples=80)
    def test_hellinger_triangle_inequality(self, p, q, r):
        assert hellinger_distance(p, r) <= (
            hellinger_distance(p, q) + hellinger_distance(q, r) + 1e-7
        )

    @given(distribution_matrix())
    def test_pairwise_consistent_with_scalar(self, rows):
        matrix = pairwise_distances(rows, "bhattacharyya")
        for i in range(rows.shape[0]):
            assert matrix[i, i] == 0.0
            for j in range(i):
                assert abs(
                    matrix[i, j] - bhattacharyya_distance(rows[i], rows[j])
                ) < 1e-7


class TestKMeansProperties:
    @given(
        npst.arrays(
            np.float64, st.tuples(st.integers(4, 40), st.integers(1, 5)),
            elements=st.floats(min_value=-10, max_value=10),
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, rows, k):
        result = KMeans(k=k, n_init=2, seed=0).fit(rows)
        assert result.labels.shape == (rows.shape[0],)
        assert result.labels.min() >= 0 and result.labels.max() < k
        assert result.inertia >= 0
        assert result.cluster_sizes().sum() == rows.shape[0]

    @given(
        npst.arrays(
            np.float64, st.tuples(st.integers(6, 30), st.integers(1, 4)),
            elements=st.floats(min_value=-5, max_value=5),
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_assignment_is_nearest_center(self, rows):
        result = KMeans(k=3, n_init=2, seed=1).fit(rows)
        for i in range(rows.shape[0]):
            own = np.linalg.norm(rows[i] - result.centers[result.labels[i]])
            for center in result.centers:
                assert own <= np.linalg.norm(rows[i] - center) + 1e-9


class TestSilhouetteProperties:
    @given(distribution_matrix(max_rows=20))
    @settings(max_examples=40, deadline=None)
    def test_range(self, rows):
        labels = np.arange(rows.shape[0]) % 2
        values = silhouette_samples(rows, labels)
        assert np.all(values >= -1.0 - 1e-12)
        assert np.all(values <= 1.0 + 1e-12)


class TestAgglomerativeProperties:
    @given(distribution_matrix(max_rows=10))
    @settings(max_examples=40, deadline=None)
    def test_tree_invariants(self, rows):
        distances = pairwise_distances(rows, "hellinger")
        tree = AgglomerativeClustering("average").fit(distances)
        m = rows.shape[0]
        assert len(tree.merges) == m - 1
        assert sorted(tree.leaf_order()) == list(range(m))
        for n_clusters in range(1, m + 1):
            labels = tree.cut(n_clusters)
            assert len(set(labels.tolist())) == n_clusters
