"""Tests for the telemetry bundle and its ambient activation."""

import pickle

import pytest

from repro.obs.clock import ManualClock
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    activate,
    current,
)


@pytest.fixture()
def clock() -> ManualClock:
    return ManualClock()


class TestTelemetry:
    def test_span_and_metrics_delegate(self, clock):
        telemetry = Telemetry(clock=clock)
        with telemetry.span("stage.collect", workers=2):
            clock.advance(1.0)
            telemetry.inc("pipeline.collected", 10)
            telemetry.gauge("pool.workers", 2)
            telemetry.observe("shard.wall_seconds", 1.0)
        assert telemetry.tracer.spans[0].duration == 1.0
        assert telemetry.metrics.counter_value("pipeline.collected") == 10

    def test_worker_name(self):
        assert Telemetry().worker == "main"
        assert Telemetry(worker="shard-3").worker == "shard-3"

    def test_enabled_flag(self):
        assert Telemetry().enabled
        assert not NULL_TELEMETRY.enabled


class TestSnapshotAbsorb:
    def test_round_trip(self, clock):
        worker = Telemetry(worker="shard-0", clock=clock)
        with worker.span("shard", index=0):
            clock.advance(2.0)
        worker.inc("shard.records_out", 7)
        worker.event("retry")

        parent = Telemetry(clock=ManualClock())
        parent.absorb(worker.snapshot())
        assert parent.tracer.spans[0].worker == "shard-0"
        assert parent.metrics.counter_value("shard.records_out") == 7
        assert parent.tracer.events[0].name == "retry"

    def test_absorb_none_is_noop(self):
        parent = Telemetry()
        parent.absorb(None)
        assert parent.metrics.empty

    def test_snapshot_is_picklable(self, clock):
        worker = Telemetry(worker="shard-1", clock=clock)
        with worker.span("shard"):
            clock.advance(0.5)
        worker.inc("shard.tweets_in", 45)
        restored = pickle.loads(pickle.dumps(worker.snapshot()))
        assert restored.worker == "shard-1"
        assert restored.spans[0].duration == 0.5
        assert restored.metrics.counter_value("shard.tweets_in") == 45

    def test_shard_order_merge_is_deterministic(self):
        def build() -> Telemetry:
            parent = Telemetry(clock=ManualClock())
            for index in range(3):
                clock = ManualClock()
                worker = Telemetry(worker=f"shard-{index}", clock=clock)
                with worker.span("shard", index=index):
                    clock.advance(index + 1)
                worker.inc("shard.records_out", index)
                parent.absorb(worker.snapshot())
            return parent

        a, b = build(), build()
        assert [s.to_dict() for s in a.tracer.spans] == [
            s.to_dict() for s in b.tracer.spans
        ]
        assert a.metrics.to_records() == b.metrics.to_records()


class TestNullTelemetry:
    def test_every_operation_is_a_noop(self):
        null = NullTelemetry()
        with null.span("x", a=1):
            null.inc("c")
            null.gauge("g", 1)
            null.observe("h", 1)
            null.event("e")
        assert null.tracer.spans == []
        assert null.tracer.events == []
        assert null.metrics.empty


class TestAmbientActivation:
    def test_default_is_null_singleton(self):
        assert current() is NULL_TELEMETRY

    def test_activate_scopes_to_block(self):
        telemetry = Telemetry(clock=ManualClock())
        with activate(telemetry) as active:
            assert active is telemetry
            assert current() is telemetry
        assert current() is NULL_TELEMETRY

    def test_nested_activation_restores_outer(self):
        outer = Telemetry(clock=ManualClock())
        inner = Telemetry(clock=ManualClock())
        with activate(outer):
            with activate(inner):
                assert current() is inner
            assert current() is outer

    def test_activation_restored_on_exception(self):
        telemetry = Telemetry(clock=ManualClock())
        with pytest.raises(RuntimeError):
            with activate(telemetry):
                raise RuntimeError()
        assert current() is NULL_TELEMETRY

    def test_instrumented_code_records_into_active(self):
        telemetry = Telemetry(clock=ManualClock())
        with activate(telemetry):
            current().inc("pipeline.collected", 3)
        assert telemetry.metrics.counter_value("pipeline.collected") == 3
