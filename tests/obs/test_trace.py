"""Tests for trace spans and events."""

import pytest

from repro.obs.clock import ManualClock
from repro.obs.trace import EventRecord, SpanRecord, Tracer


@pytest.fixture()
def clock() -> ManualClock:
    return ManualClock()


@pytest.fixture()
def tracer(clock) -> Tracer:
    return Tracer(worker="main", clock=clock)


class TestSpans:
    def test_records_duration(self, tracer, clock):
        with tracer.span("stage.collect"):
            clock.advance(1.5)
        (span,) = tracer.spans
        assert span.name == "stage.collect"
        assert span.start == 0.0
        assert span.end == 1.5
        assert span.duration == 1.5

    def test_attrs_captured(self, tracer):
        with tracer.span("shard", index=3, tweets=90):
            pass
        assert tracer.spans[0].attrs == {"index": 3, "tweets": 90}

    def test_nesting_records_parent(self, tracer, clock):
        with tracer.span("outer"):
            with tracer.span("inner"):
                clock.advance(1.0)
        inner, outer = tracer.spans  # inner closes first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, outer = tracer.spans
        assert a.parent_id == b.parent_id == outer.span_id
        assert a.span_id != b.span_id

    def test_span_recorded_on_exception(self, tracer, clock):
        with pytest.raises(RuntimeError):
            with tracer.span("stage.cluster"):
                clock.advance(2.0)
                raise RuntimeError("stage blew up")
        (span,) = tracer.spans
        assert span.duration == 2.0

    def test_stack_unwinds_after_exception(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError()
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].parent_id is None

    def test_worker_stamp(self, clock):
        tracer = Tracer(worker="shard-2", clock=clock)
        with tracer.span("shard"):
            pass
        assert tracer.spans[0].worker == "shard-2"

    def test_to_dict_round_trip_fields(self, tracer, clock):
        with tracer.span("stage.report", fingerprint="abc"):
            clock.advance(0.5)
        record = tracer.spans[0].to_dict()
        assert record["kind"] == "span"
        assert record["duration"] == 0.5
        assert record["attrs"] == {"fingerprint": "abc"}


class TestEvents:
    def test_event_at_current_reading(self, tracer, clock):
        clock.advance(4.0)
        tracer.event("supervisor.retry", task="shard-1", attempt=2)
        (event,) = tracer.events
        assert event.at == 4.0
        assert event.attrs == {"task": "shard-1", "attempt": 2}

    def test_to_dict(self, tracer):
        tracer.event("stage.skipped")
        record = tracer.events[0].to_dict()
        assert record["kind"] == "event"
        assert record["name"] == "stage.skipped"


class TestAbsorb:
    def test_merges_worker_buffers_preserving_stamps(self, tracer):
        worker = Tracer(worker="shard-0", clock=ManualClock())
        with worker.span("shard"):
            pass
        worker.event("something")
        tracer.absorb(worker.spans, worker.events)
        assert tracer.spans[0].worker == "shard-0"
        assert tracer.events[0].worker == "shard-0"

    def test_ids_unique_per_worker_only(self):
        a = Tracer(worker="shard-0", clock=ManualClock())
        b = Tracer(worker="shard-1", clock=ManualClock())
        for worker_tracer in (a, b):
            with worker_tracer.span("shard"):
                pass
        parent = Tracer(worker="main", clock=ManualClock())
        parent.absorb(a.spans, a.events)
        parent.absorb(b.spans, b.events)
        keys = {(s.worker, s.span_id) for s in parent.spans}
        assert len(keys) == 2  # (worker, span_id) is the global key


class TestRecords:
    def test_span_record_is_frozen(self):
        span = SpanRecord(
            name="x", worker="main", span_id=0, parent_id=None,
            start=0.0, end=1.0,
        )
        with pytest.raises(AttributeError):
            span.end = 2.0

    def test_event_record_is_frozen(self):
        event = EventRecord(name="x", worker="main", at=0.0)
        with pytest.raises(AttributeError):
            event.at = 1.0
