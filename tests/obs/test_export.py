"""Tests for trace export, reading, validation, and summaries."""

import json

import pytest

from repro.obs.clock import ManualClock
from repro.obs.export import (
    TRACE_SCHEMA,
    read_trace,
    summarize_trace,
    trace_records,
    validate_trace,
    write_trace,
)
from repro.obs.telemetry import Telemetry


@pytest.fixture()
def telemetry() -> Telemetry:
    clock = ManualClock()
    bundle = Telemetry(clock=clock)
    with bundle.span("stage.collect", workers=2):
        clock.advance(1.5)
        with bundle.span("shard", index=0):
            clock.advance(0.5)
    bundle.event("supervisor.retry", task="shard-0", attempt=1)
    bundle.inc("pipeline.collected", 100)
    bundle.inc("pipeline.dropped", 14, stage="non_us")
    bundle.inc("supervisor.retries", 1)
    bundle.gauge("pool.workers", 2)
    bundle.observe("shard.wall_seconds", 0.5)
    return bundle


class TestTraceRecords:
    def test_meta_first_with_schema_and_attrs(self, telemetry):
        records = trace_records(telemetry, fingerprint="abc123")
        assert records[0]["kind"] == "meta"
        assert records[0]["schema"] == TRACE_SCHEMA
        assert records[0]["worker"] == "main"
        assert records[0]["fingerprint"] == "abc123"

    def test_order_spans_events_metrics(self, telemetry):
        kinds = [record["kind"] for record in trace_records(telemetry)]
        assert kinds == [
            "meta", "span", "span", "event",
            "counter", "counter", "counter", "gauge", "histogram",
        ]

    def test_records_are_json_serializable(self, telemetry):
        for record in trace_records(telemetry):
            json.loads(json.dumps(record))


class TestWriteRead:
    def test_round_trip(self, telemetry, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = write_trace(telemetry, path, fingerprint="abc")
        records = read_trace(path)
        assert len(records) == written
        assert validate_trace(records) == []

    def test_repeated_flush_replaces_whole_file(self, telemetry, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(telemetry, path)
        first = path.read_bytes()
        telemetry.inc("journal.stages_run")
        write_trace(telemetry, path)
        second = path.read_bytes()
        assert second != first
        assert validate_trace(read_trace(path)) == []

    def test_equal_telemetry_writes_identical_bytes(self, tmp_path):
        def build() -> Telemetry:
            clock = ManualClock()
            bundle = Telemetry(clock=clock)
            with bundle.span("stage.collect"):
                clock.advance(1.0)
            bundle.inc("pipeline.collected", 5)
            return bundle

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace(build(), a, fingerprint="x")
        write_trace(build(), b, fingerprint="x")
        assert a.read_bytes() == b.read_bytes()

    def test_torn_tail_tolerated(self, telemetry, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(telemetry, path)
        whole = read_trace(path)
        # Simulate the writer dying mid-line on its final record.
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.warns(UserWarning, match="torn trailing record"):
            torn = read_trace(path)
        assert torn == whole[:-1]

    def test_torn_tail_strict_mode_raises(self, telemetry, tmp_path):
        from repro.errors import SerializationError

        path = tmp_path / "trace.jsonl"
        write_trace(telemetry, path)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(SerializationError):
            read_trace(path, tolerate_torn_tail=False)


class TestValidate:
    def test_empty_invalid(self):
        assert validate_trace([]) == ["trace is empty (no meta header)"]

    def test_missing_meta_header(self, telemetry):
        records = trace_records(telemetry)[1:]
        problems = validate_trace(records)
        assert any("must be meta" in problem for problem in problems)

    def test_wrong_schema(self, telemetry):
        records = trace_records(telemetry)
        records[0] = dict(records[0], schema=99)
        problems = validate_trace(records)
        assert any("schema" in problem for problem in problems)

    def test_unknown_kind(self, telemetry):
        records = trace_records(telemetry) + [{"kind": "mystery"}]
        assert any("unknown kind" in p for p in validate_trace(records))

    def test_missing_keys(self, telemetry):
        records = trace_records(telemetry) + [{"kind": "span", "name": "x"}]
        assert any("missing" in p for p in validate_trace(records))

    def test_span_end_before_start(self, telemetry):
        bad = {
            "kind": "span", "name": "x", "worker": "main", "span_id": 9,
            "start": 5.0, "end": 1.0, "attrs": {},
        }
        records = trace_records(telemetry) + [bad]
        assert any("precedes start" in p for p in validate_trace(records))

    def test_negative_counter(self, telemetry):
        bad = {"kind": "counter", "name": "x", "labels": {}, "value": -1}
        records = trace_records(telemetry) + [bad]
        assert any("negative" in p for p in validate_trace(records))

    def test_histogram_bucket_sum_mismatch(self, telemetry):
        bad = {
            "kind": "histogram", "name": "x", "labels": {},
            "count": 3, "sum": 1.0, "buckets": [[1.0, 1]],
        }
        records = trace_records(telemetry) + [bad]
        assert any("bucket counts sum" in p for p in validate_trace(records))

    def test_duplicate_meta_rejected(self, telemetry):
        records = trace_records(telemetry)
        records.append(dict(records[0]))
        assert any("meta must be first" in p for p in validate_trace(records))


class TestSummarize:
    def test_stages_funnel_shards_and_faults(self, telemetry):
        summary = summarize_trace(trace_records(telemetry))
        assert summary.stages == [("stage.collect", "main", 2.0)]
        assert summary.funnel == {
            "pipeline.collected": 100.0,
            "pipeline.dropped{stage=non_us}": 14.0,
        }
        assert summary.slowest_shards == [("main", 0.5)]
        assert summary.fault_counters == {"supervisor.retries": 1.0}
        assert summary.span_count == 2
        assert summary.event_count == 1

    def test_shards_sorted_slowest_first(self):
        records = [
            {"kind": "meta", "schema": TRACE_SCHEMA, "worker": "main"},
        ]
        for index, duration in enumerate((0.2, 0.9, 0.5)):
            records.append({
                "kind": "span", "name": "shard", "worker": f"shard-{index}",
                "span_id": index, "parent_id": None,
                "start": 0.0, "end": duration, "attrs": {},
            })
        summary = summarize_trace(records)
        assert [w for w, __ in summary.slowest_shards] == [
            "shard-1", "shard-2", "shard-0",
        ]

    def test_as_rows_and_to_dict_agree(self, telemetry):
        summary = summarize_trace(trace_records(telemetry))
        rows = dict(summary.as_rows())
        assert rows["spans"] == "2"
        assert rows["pipeline.collected"] == "100"
        exported = summary.to_dict()
        assert exported["span_count"] == 2
        assert exported["funnel"]["pipeline.collected"] == 100.0
