"""Tests for counters, gauges, and histograms."""

import pytest

from repro.obs.metrics import (
    BUCKET_EXPONENTS,
    HistogramData,
    MetricsRegistry,
    bucket_bound,
)


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounters:
    def test_default_increment(self, registry):
        registry.inc("pipeline.collected")
        registry.inc("pipeline.collected")
        assert registry.counter_value("pipeline.collected") == 2

    def test_labelled_series_are_distinct(self, registry):
        registry.inc("pipeline.dropped", 3, stage="keyword")
        registry.inc("pipeline.dropped", 5, stage="non_us")
        assert registry.counter_value("pipeline.dropped", stage="keyword") == 3
        assert registry.counter_value("pipeline.dropped", stage="non_us") == 5

    def test_missing_counter_reads_zero(self, registry):
        assert registry.counter_value("never.touched") == 0

    def test_float_increment(self, registry):
        registry.inc("transport.backoff_seconds", 0.25)
        registry.inc("transport.backoff_seconds", 0.5)
        assert registry.counter_value("transport.backoff_seconds") == 0.75

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.inc("x", -1)

    def test_mixed_label_value_types_sort(self, registry):
        # Stringified canonical labels: int and str values may coexist
        # without breaking the sorted export.
        registry.inc("shard.tweets_in", 4, index=0)
        registry.inc("shard.tweets_in", 4, index="high")
        assert len(registry.to_records()) == 2


class TestGauges:
    def test_last_write_wins(self, registry):
        registry.gauge("pool.workers", 2)
        registry.gauge("pool.workers", 4)
        assert registry.gauge_value("pool.workers") == 4.0

    def test_missing_gauge_is_none(self, registry):
        assert registry.gauge_value("never.touched") is None


class TestHistograms:
    def test_observe_accumulates(self, registry):
        registry.observe("shard.wall_seconds", 0.5)
        registry.observe("shard.wall_seconds", 1.5)
        data = registry.histogram_data("shard.wall_seconds")
        assert data.count == 2
        assert data.total == 2.0
        assert data.minimum == 0.5
        assert data.maximum == 1.5

    def test_bucket_sum_equals_count(self, registry):
        for value in (0.001, 0.1, 1.0, 7.0, 7.0, 100.0):
            registry.observe("x", value)
        data = registry.histogram_data("x")
        assert sum(data.buckets.values()) == data.count

    def test_zero_and_negative_land_in_zero_bucket(self, registry):
        registry.observe("x", 0.0)
        registry.observe("x", -1.0)
        data = registry.histogram_data("x")
        assert data.buckets[0.0] == 2


class TestBucketBound:
    def test_power_of_two_is_own_bound(self):
        assert bucket_bound(2.0) == 2.0
        assert bucket_bound(0.5) == 0.5

    def test_value_rounds_up(self):
        assert bucket_bound(3.0) == 4.0
        assert bucket_bound(0.3) == 0.5

    def test_clamped_to_range(self):
        assert bucket_bound(1e-30) == 2.0 ** BUCKET_EXPONENTS.start
        assert bucket_bound(1e30) == 2.0 ** (BUCKET_EXPONENTS.stop - 1)


class TestMerge:
    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 2)
        b.inc("x", 3)
        a.merge(b)
        assert a.counter_value("x") == 5

    def test_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g", 1)
        b.gauge("g", 2)
        a.merge(b)
        assert a.gauge_value("g") == 2.0

    def test_histograms_pool_exactly(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        values_a = (0.1, 0.4, 3.0)
        values_b = (0.2, 8.0)
        for value in values_a:
            a.observe("h", value)
        for value in values_b:
            b.observe("h", value)
        a.merge(b)
        pooled = MetricsRegistry()
        for value in values_a + values_b:
            pooled.observe("h", value)
        assert a.histogram_data("h").to_dict() == pooled.histogram_data(
            "h"
        ).to_dict()

    def test_merge_order_independent_for_counters(self):
        buffers = []
        for shard in range(3):
            registry = MetricsRegistry()
            registry.inc("shard.records_out", shard + 1, index=shard)
            registry.inc("total", shard + 1)
            buffers.append(registry)
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for registry in buffers:
            forward.merge(registry)
        for registry in reversed(buffers):
            backward.merge(registry)
        assert forward.to_records() == backward.to_records()


class TestExport:
    def test_empty(self, registry):
        assert registry.empty
        assert registry.to_records() == []
        registry.inc("x")
        assert not registry.empty

    def test_records_sorted_and_typed(self, registry):
        registry.gauge("z.gauge", 1)
        registry.inc("b.counter")
        registry.inc("a.counter")
        registry.observe("m.hist", 2.0)
        records = registry.to_records()
        kinds = [record["kind"] for record in records]
        assert kinds == ["counter", "counter", "gauge", "histogram"]
        counters = [r["name"] for r in records if r["kind"] == "counter"]
        assert counters == sorted(counters)

    def test_histogram_export_shape(self, registry):
        registry.observe("h", 3.0)
        (record,) = registry.to_records()
        assert record["count"] == 1
        assert record["sum"] == 3.0
        assert record["buckets"] == [[4.0, 1]]

    def test_empty_histogram_data_exports_none_extremes(self):
        data = HistogramData()
        exported = data.to_dict()
        assert exported["min"] is None
        assert exported["max"] is None
