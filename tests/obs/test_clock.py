"""Tests for the monotonic-clock seam."""

import pytest

from repro.obs.clock import MONOTONIC, ManualClock, MonotonicClock


class TestMonotonicClock:
    def test_advances(self):
        clock = MonotonicClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_shared_singleton(self):
        assert isinstance(MONOTONIC, MonotonicClock)


class TestManualClock:
    def test_starts_at_zero(self):
        assert ManualClock().now() == 0.0

    def test_custom_start(self):
        assert ManualClock(start=10.5).now() == 10.5

    def test_advance(self):
        clock = ManualClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now() == 1.75

    def test_zero_advance_allowed(self):
        clock = ManualClock(start=3.0)
        clock.advance(0.0)
        assert clock.now() == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-0.1)
