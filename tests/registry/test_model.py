"""Tests for the transplant registry simulation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.organs import ORGANS, Organ
from repro.registry.config import OrganFlow, RegistryConfig, calibrated_2012_config
from repro.registry.model import TransplantRegistry
from repro.registry.statistics import summarize_registry


@pytest.fixture(scope="module")
def outcome():
    return TransplantRegistry(calibrated_2012_config(seed=3)).run()


@pytest.fixture(scope="module")
def stats(outcome):
    return summarize_registry(outcome)


class TestConfigValidation:
    def test_calibrated_config_valid(self):
        config = calibrated_2012_config()
        assert len(config.flows) == 6
        assert config.months == 12

    def test_wrong_flow_count_rejected(self):
        flow = OrganFlow(10, 10, 0.1, 0.1, 1.0)
        with pytest.raises(ConfigError):
            RegistryConfig(flows=(flow,) * 3)

    def test_bad_mortality_rejected(self):
        with pytest.raises(ConfigError):
            OrganFlow(10, 10, 1.5, 0.1, 1.0)

    def test_negative_volumes_rejected(self):
        with pytest.raises(ConfigError):
            OrganFlow(-1, 10, 0.1, 0.1, 1.0)

    def test_bad_local_share_rejected(self):
        flow = OrganFlow(10, 10, 0.1, 0.1, 1.0)
        with pytest.raises(ConfigError):
            RegistryConfig(flows=(flow,) * 6, local_allocation_share=1.5)


class TestConservation:
    def test_waitlist_flow_balance(self, outcome):
        """initial + additions − transplants − deaths − removals = final."""
        config = calibrated_2012_config(seed=3)
        initial = np.array([flow.initial_waitlist for flow in config.flows])
        balance = (
            initial
            + outcome.additions.sum(axis=0)
            - outcome.transplants.sum(axis=0)
            - outcome.deaths.sum(axis=0)
            - outcome.removals.sum(axis=0)
        )
        np.testing.assert_allclose(
            balance, outcome.final_waitlist.sum(axis=0), atol=1e-6
        )

    def test_no_negative_quantities(self, outcome):
        for array in (
            outcome.additions, outcome.transplants, outcome.imports,
            outcome.local_transplants, outcome.donor_grafts,
            outcome.deaths, outcome.removals, outcome.final_waitlist,
        ):
            assert (array >= 0).all()

    def test_transplants_bounded_by_grafts(self, outcome):
        """Nationally, transplants cannot exceed recovered grafts."""
        assert (
            outcome.transplants.sum(axis=0)
            <= outcome.donor_grafts.sum(axis=0) + 1e-9
        ).all()

    def test_transplants_split_into_local_and_imports(self, outcome):
        np.testing.assert_allclose(
            outcome.transplants,
            outcome.local_transplants + outcome.imports,
            atol=1e-9,
        )

    def test_deterministic_per_seed(self):
        a = TransplantRegistry(calibrated_2012_config(seed=11)).run()
        b = TransplantRegistry(calibrated_2012_config(seed=11)).run()
        np.testing.assert_array_equal(a.transplants, b.transplants)


class TestCalibration:
    def test_national_transplants_match_optn_2012(self, stats):
        """Within 12% of every published 2012 volume, with an absolute
        allowance of ~2.5 Poisson σ for the tiny intestine volume."""
        from repro.data.transplants import TRANSPLANTS_2012

        for organ, published in TRANSPLANTS_2012.items():
            measured = stats.national_transplants[organ]
            tolerance = max(0.12 * published, 2.5 * published**0.5)
            assert abs(measured - published) <= tolerance, organ

    def test_transplant_ranking_matches_optn(self, stats):
        from repro.data.transplants import transplant_rank

        ours = sorted(
            ORGANS, key=lambda organ: -stats.national_transplants[organ]
        )
        assert ours == transplant_rank()

    def test_paper_intro_deaths_per_day(self, stats):
        """§I: 'nearly 22 patients die in the USA every day'."""
        assert stats.deaths_per_day == pytest.approx(22.0, abs=4.0)

    def test_paper_intro_kidney_shortfall(self, stats):
        """§I: ~60k waiting, ~17k transplanted — less than 1/3."""
        assert stats.national_waitlist[Organ.KIDNEY] == pytest.approx(
            60_000, rel=0.15
        )
        assert stats.transplant_shortfall(Organ.KIDNEY) > 3.0

    def test_geographic_disparity_exists(self, stats):
        """Ref [6]: a meaningful share of transplants cross state lines."""
        assert 0.05 < stats.import_share[Organ.KIDNEY] < 0.6


class TestPlantedDonorGeography:
    def test_kansas_unique_kidney_surplus_over_cao_window(self):
        """Cao et al. used 2008–2013; over a 6-year horizon Kansas is the
        unique kidney-donor surplus state, as planted."""
        outcome = TransplantRegistry(
            calibrated_2012_config(seed=3, months=72)
        ).run()
        stats = summarize_registry(outcome)
        assert stats.donor_surplus_states(Organ.KIDNEY) == ["KS"]

    def test_no_surplus_for_unboosted_organ(self):
        outcome = TransplantRegistry(
            calibrated_2012_config(seed=3, months=72)
        ).run()
        stats = summarize_registry(outcome)
        assert "KS" not in stats.donor_surplus_states(Organ.LIVER)
