"""Tests for the social-sensor validity analysis."""

import pytest

from repro.core.relative_risk import state_organ_risks
from repro.organs import Organ
from repro.registry.config import calibrated_2012_config
from repro.registry.model import TransplantRegistry
from repro.registry.statistics import summarize_registry
from repro.registry.validation import sensor_validity


@pytest.fixture(scope="module")
def registry_stats():
    outcome = TransplantRegistry(
        calibrated_2012_config(seed=3, months=72)
    ).run()
    return summarize_registry(outcome)


@pytest.fixture(scope="module")
def risks(midsize_corpus):
    return state_organ_risks(midsize_corpus)


class TestSensorValidity:
    def test_kansas_jointly_flagged(self, risks, registry_stats):
        """The paper's flagship cross-validation: the state with excess
        kidney conversation is a kidney-donor surplus state."""
        validity = sensor_validity(risks, registry_stats, Organ.KIDNEY)
        assert "KS" in validity.sensor_states
        assert "KS" in validity.registry_states
        assert "KS" in validity.jointly_flagged
        assert validity.agrees

    def test_correlation_computed_over_common_states(self, risks,
                                                     registry_stats):
        validity = sensor_validity(risks, registry_stats, Organ.KIDNEY)
        assert validity.correlation.n >= 40

    def test_unplanted_organ_does_not_flag_kansas(self, risks,
                                                  registry_stats):
        validity = sensor_validity(risks, registry_stats, Organ.LIVER)
        assert "KS" not in validity.jointly_flagged

    def test_surplus_factor_tightens_registry_set(self, risks,
                                                  registry_stats):
        loose = sensor_validity(
            risks, registry_stats, Organ.KIDNEY, surplus_factor=1.1
        )
        strict = sensor_validity(
            risks, registry_stats, Organ.KIDNEY, surplus_factor=1.4
        )
        assert set(strict.registry_states) <= set(loose.registry_states)
