"""Unit tests for registry aggregation math on hand-built outcomes."""

import numpy as np
import pytest

from repro.geo.gazetteer import ALL_REGION_CODES, STATES
from repro.organs import N_ORGANS, Organ
from repro.registry.model import RegistryOutcome
from repro.registry.statistics import summarize_registry


def outcome_with(transplants=None, deaths=None, donor_grafts=None,
                 final_waitlist=None, months=12) -> RegistryOutcome:
    n = len(ALL_REGION_CODES)
    zeros = np.zeros((n, N_ORGANS))
    return RegistryOutcome(
        states=ALL_REGION_CODES,
        additions=zeros.copy(),
        transplants=zeros.copy() if transplants is None else transplants,
        imports=zeros.copy(),
        regional_imports=zeros.copy(),
        local_transplants=zeros.copy(),
        donor_grafts=zeros.copy() if donor_grafts is None else donor_grafts,
        deaths=zeros.copy() if deaths is None else deaths,
        removals=zeros.copy(),
        final_waitlist=zeros.copy() if final_waitlist is None else final_waitlist,
        months=months,
    )


class TestNationalAggregates:
    def test_transplants_annualized(self):
        transplants = np.zeros((52, N_ORGANS))
        transplants[:, Organ.KIDNEY.index] = 10.0  # 520 over 24 months
        stats = summarize_registry(outcome_with(transplants=transplants,
                                                months=24))
        assert stats.national_transplants[Organ.KIDNEY] == pytest.approx(260.0)

    def test_deaths_per_day(self):
        deaths = np.zeros((52, N_ORGANS))
        deaths[0, 0] = 365.25 / 12 * 30.44  # ≈ one death/day for a month?
        stats = summarize_registry(outcome_with(deaths=deaths, months=1))
        assert stats.deaths_per_day == pytest.approx(
            deaths.sum() / 30.44
        )

    def test_waitlist_snapshot_not_annualized(self):
        waitlist = np.zeros((52, N_ORGANS))
        waitlist[:, Organ.LIVER.index] = 100.0
        stats = summarize_registry(
            outcome_with(final_waitlist=waitlist, months=24)
        )
        assert stats.national_waitlist[Organ.LIVER] == pytest.approx(5200.0)


class TestShortfall:
    def test_ratio(self):
        transplants = np.zeros((52, N_ORGANS))
        transplants[0, Organ.KIDNEY.index] = 100.0
        waitlist = np.zeros((52, N_ORGANS))
        waitlist[0, Organ.KIDNEY.index] = 400.0
        stats = summarize_registry(
            outcome_with(transplants=transplants, final_waitlist=waitlist)
        )
        assert stats.transplant_shortfall(Organ.KIDNEY) == pytest.approx(4.0)

    def test_zero_transplants_infinite(self):
        waitlist = np.zeros((52, N_ORGANS))
        waitlist[0, 0] = 10.0
        stats = summarize_registry(outcome_with(final_waitlist=waitlist))
        assert stats.transplant_shortfall(Organ.HEART) == float("inf")


class TestDonorRates:
    def test_per_million_math(self):
        grafts = np.zeros((52, N_ORGANS))
        ks_row = ALL_REGION_CODES.index("KS")
        grafts[ks_row, Organ.KIDNEY.index] = 291.2  # KS pop 2912k → 100/M
        stats = summarize_registry(outcome_with(donor_grafts=grafts))
        assert stats.donor_rate_per_million["KS"][Organ.KIDNEY] == (
            pytest.approx(100.0)
        )

    def test_surplus_threshold(self):
        grafts = np.zeros((52, N_ORGANS))
        # Everyone at parity except Kansas at 2× per capita.
        for row, state in enumerate(STATES):
            grafts[row, Organ.KIDNEY.index] = state.population * 0.05
        ks_row = ALL_REGION_CODES.index("KS")
        grafts[ks_row, Organ.KIDNEY.index] *= 2
        stats = summarize_registry(outcome_with(donor_grafts=grafts))
        assert stats.donor_surplus_states(Organ.KIDNEY) == ["KS"]

    def test_import_share(self):
        transplants = np.zeros((52, N_ORGANS))
        imports = np.zeros((52, N_ORGANS))
        transplants[0, 0] = 10.0
        imports[0, 0] = 4.0
        outcome = outcome_with(transplants=transplants)
        outcome = RegistryOutcome(
            states=outcome.states,
            additions=outcome.additions,
            transplants=transplants,
            imports=imports,
            regional_imports=imports * 0.5,
            local_transplants=transplants - imports,
            donor_grafts=outcome.donor_grafts,
            deaths=outcome.deaths,
            removals=outcome.removals,
            final_waitlist=outcome.final_waitlist,
            months=12,
        )
        stats = summarize_registry(outcome)
        assert stats.import_share[Organ.HEART] == pytest.approx(0.4)

    def test_zero_transplants_zero_import_share(self):
        stats = summarize_registry(outcome_with())
        assert stats.import_share[Organ.LUNG] == 0.0
