"""Tests for the OPTN region map and the three-tier allocation."""

import numpy as np
import pytest

from repro.errors import GeoError
from repro.geo.gazetteer import ALL_REGION_CODES
from repro.registry.config import calibrated_2012_config
from repro.registry.model import TransplantRegistry
from repro.registry.regions import (
    OPTN_REGIONS,
    optn_region_of,
    validate_region_partition,
)


class TestRegionMap:
    def test_partition_is_exact(self):
        validate_region_partition()  # raises on any defect

    def test_eleven_regions(self):
        assert set(OPTN_REGIONS) == set(range(1, 12))

    def test_known_assignments(self):
        assert optn_region_of("KS") == 8
        assert optn_region_of("TX") == 4
        assert optn_region_of("NY") == 9
        assert optn_region_of("PR") == 3
        assert optn_region_of("va") == 11  # case-insensitive

    def test_unknown_state_raises(self):
        with pytest.raises(GeoError):
            optn_region_of("ZZ")

    def test_every_gazetteer_state_mapped(self):
        for code in ALL_REGION_CODES:
            assert 1 <= optn_region_of(code) <= 11


class TestThreeTierAllocation:
    @pytest.fixture(scope="class")
    def outcome(self):
        return TransplantRegistry(calibrated_2012_config(seed=3)).run()

    def test_regional_imports_within_total(self, outcome):
        assert (outcome.regional_imports <= outcome.imports + 1e-9).all()
        assert (outcome.regional_imports >= 0).all()

    def test_all_three_tiers_used(self, outcome):
        local = outcome.local_transplants.sum()
        regional = outcome.regional_imports.sum()
        national = (outcome.imports - outcome.regional_imports).sum()
        assert local > 0
        assert regional > 0
        assert national > 0

    def test_local_tier_dominates(self, outcome):
        """Most grafts stay local, as in the real system's era."""
        assert outcome.local_transplants.sum() > outcome.imports.sum() * 0.8

    def test_transplants_decompose(self, outcome):
        np.testing.assert_allclose(
            outcome.transplants,
            outcome.local_transplants + outcome.imports,
            atol=1e-9,
        )
