"""Tests for the slim IPC wire format."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro.errors import SerializationError
from repro.geo.geocoder import GeoMatch
from repro.obs.telemetry import Telemetry
from repro.organs import Organ
from repro.dataset.records import CollectedTweet
from repro.pipeline.runner import PipelineReport
from repro.pipeline.wire import (
    WIRE_VERSION,
    decode_records,
    decode_shard_result,
    encode_records,
    encode_shard_result,
)
from repro.twitter.models import Tweet, UserProfile


def make_records(n: int = 3) -> list[tuple[int, CollectedTweet]]:
    records = []
    for i in range(n):
        records.append(
            (
                i * 7,
                CollectedTweet(
                    tweet=Tweet(
                        tweet_id=1000 + i,
                        user=UserProfile(
                            user_id=i + 1,
                            screen_name=f"user{i}",
                            location="Columbus, Ohio",
                        ),
                        text=f"be an organ donor #{i} 🙏",
                        created_at=datetime(
                            2015, 6, 1, 12, i, tzinfo=timezone.utc
                        ),
                    ),
                    location=GeoMatch("US", "OH", 0.9, "profile"),
                    mentions={Organ.KIDNEY: 2, Organ.HEART: 1},
                ),
            )
        )
    return records


def make_report() -> PipelineReport:
    return PipelineReport(
        stream_dropped=40, collected=10, located_gps=2, located_profile=5,
        unresolved=3, non_us=1, us_located=6, no_mentions=3, retained=3,
    )


class TestRecordLines:
    def test_round_trip(self):
        records = make_records()
        assert decode_records(encode_records(records)) == records

    def test_empty(self):
        assert encode_records([]) == b""
        assert decode_records(b"") == []

    def test_malformed_line_raises(self):
        with pytest.raises(SerializationError):
            decode_records(b'[0, {"not a record": true}]\n')
        with pytest.raises(SerializationError):
            decode_records(b"{truncated\n")


class TestShardFrame:
    def test_round_trip_without_snapshot(self):
        records, report = make_records(), make_report()
        frame = encode_shard_result(records, report, None)
        out_records, out_report, out_snapshot = decode_shard_result(frame)
        assert out_records == records
        assert out_report == report
        assert out_snapshot is None

    def test_round_trip_with_snapshot(self):
        telemetry = Telemetry()
        telemetry.inc("pipeline.collected", 5)
        snapshot = telemetry.snapshot()
        frame = encode_shard_result(make_records(1), make_report(), snapshot)
        __, __, out_snapshot = decode_shard_result(frame)
        assert out_snapshot is not None
        absorbed = Telemetry()
        absorbed.absorb(out_snapshot)

    def test_empty_shard(self):
        frame = encode_shard_result([], PipelineReport(), None)
        records, report, snapshot = decode_shard_result(frame)
        assert records == []
        assert report == PipelineReport()
        assert snapshot is None

    def test_wrong_version_rejected(self):
        frame = encode_shard_result([], PipelineReport(), None)
        bumped = frame.replace(
            f'"v":{WIRE_VERSION}'.encode(),
            f'"v":{WIRE_VERSION + 1}'.encode(),
            1,
        )
        with pytest.raises(SerializationError, match="version"):
            decode_shard_result(bumped)

    def test_missing_header_rejected(self):
        with pytest.raises(SerializationError, match="header"):
            decode_shard_result(b"no newline anywhere")

    def test_truncated_records_rejected(self):
        frame = encode_shard_result(make_records(3), make_report(), None)
        # Cut inside the record section: header promises 3 records.
        header_end = frame.index(b"\n")
        first_record_end = frame.index(b"\n", header_end + 1)
        with pytest.raises(SerializationError, match="truncated"):
            decode_shard_result(frame[: first_record_end + 1])

    def test_short_snapshot_tail_rejected(self):
        telemetry = Telemetry()
        telemetry.inc("x", 1)
        frame = encode_shard_result([], make_report(), telemetry.snapshot())
        with pytest.raises(SerializationError, match="tail"):
            decode_shard_result(frame[:-4])

    def test_corrupt_record_line_rejected(self):
        frame = encode_shard_result(make_records(1), make_report(), None)
        header_end = frame.index(b"\n")
        corrupted = (
            frame[: header_end + 1]
            + b"{garbage}\n"
            + frame[frame.index(b"\n", header_end + 1) + 1 :]
        )
        with pytest.raises(SerializationError):
            decode_shard_result(corrupted)
