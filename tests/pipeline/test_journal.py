"""Tests for the stage-checkpointed run journal."""

import json

import pytest

from repro.errors import PipelineError
from repro.pipeline.journal import (
    STAGE_ARTIFACTS,
    STAGES,
    RunJournal,
    RunParams,
    run_stages,
)

#: Small but analysis-complete: k must be >= the 6 organs and the corpus
#: must keep enough users for clustering.
PARAMS = RunParams(scale=0.01, seed=7, k=6)


@pytest.fixture(scope="module")
def completed_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("journaled_run")
    summary = run_stages(run_dir, PARAMS)
    return run_dir, summary


class TestRunParams:
    def test_fingerprint_is_stable(self):
        assert RunParams().fingerprint() == RunParams().fingerprint()

    def test_fingerprint_distinguishes_every_field(self):
        base = RunParams()
        variants = [
            RunParams(scale=0.02), RunParams(seed=1), RunParams(workers=2),
            RunParams(k=6), RunParams(alpha=0.01), RunParams(chaos=True),
            RunParams(chaos_seed=1), RunParams(worker_chaos=True),
            RunParams(worker_chaos_seed=1),
        ]
        prints = {v.fingerprint() for v in variants}
        assert len(prints) == len(variants)
        assert base.fingerprint() not in prints

    def test_round_trips_through_dict(self):
        params = RunParams(scale=0.5, seed=3, chaos=True, worker_chaos=True)
        assert RunParams.from_dict(params.to_dict()) == params


class TestFreshRun:
    def test_runs_every_stage_and_writes_every_artifact(self, completed_run):
        run_dir, summary = completed_run
        assert summary.stages_run == STAGES
        assert summary.stages_skipped == ()
        for __, artifacts in STAGE_ARTIFACTS:
            for name in artifacts:
                assert (run_dir / name).exists(), name
        assert (run_dir / "journal.json").exists()

    def test_report_artifact_round_trips_health(self, completed_run):
        run_dir, summary = completed_run
        assert summary.report.retained > 0
        data = json.loads((run_dir / "report.json").read_text())
        assert data["retained"] == summary.report.retained

    def test_refuses_to_clobber_an_existing_run(self, completed_run):
        run_dir, __ = completed_run
        with pytest.raises(PipelineError, match="already contains"):
            run_stages(run_dir, PARAMS)


class TestResume:
    def test_resume_of_complete_run_skips_everything(self, completed_run):
        run_dir, __ = completed_run
        summary = run_stages(run_dir, PARAMS, resume=True)
        assert summary.stages_run == ()
        assert summary.stages_skipped == STAGES

    def test_resume_requires_a_journal(self, tmp_path):
        with pytest.raises(PipelineError, match="no journal"):
            run_stages(tmp_path, PARAMS, resume=True)

    def test_resume_refuses_different_parameters(self, completed_run):
        run_dir, __ = completed_run
        other = RunParams(scale=0.01, seed=8, k=6)
        with pytest.raises(PipelineError, match="parameters differ"):
            run_stages(run_dir, other, resume=True)

    def test_resume_detects_a_tampered_artifact(self, completed_run, tmp_path):
        run_dir, __ = completed_run
        journal_blob = (run_dir / "journal.json").read_bytes()
        target = tmp_path / "copy"
        target.mkdir()
        for path in run_dir.iterdir():
            (target / path.name).write_bytes(path.read_bytes())
        (target / "fig2.txt").write_text("tampered\n")
        with pytest.raises(PipelineError, match="hash mismatch"):
            run_stages(target, PARAMS, resume=True)
        assert (run_dir / "journal.json").read_bytes() == journal_blob

    def test_resume_detects_a_missing_artifact(self, completed_run, tmp_path):
        run_dir, __ = completed_run
        target = tmp_path / "copy"
        target.mkdir()
        for path in run_dir.iterdir():
            (target / path.name).write_bytes(path.read_bytes())
        (target / "fig3.txt").unlink()
        with pytest.raises(PipelineError, match="missing"):
            run_stages(target, PARAMS, resume=True)

    def test_partial_resume_reruns_only_incomplete_stages(
        self, completed_run, tmp_path
    ):
        run_dir, __ = completed_run
        target = tmp_path / "partial"
        target.mkdir()
        for path in run_dir.iterdir():
            (target / path.name).write_bytes(path.read_bytes())
        reference = {
            p.name: p.read_bytes()
            for p in target.iterdir()
            if p.name != "journal.json"
        }
        # Simulate a crash after fig4: later stages unjournaled, their
        # artifacts torn or absent.
        journal = json.loads((target / "journal.json").read_text())
        for stage in ("fig5", "fig6", "fig7"):
            del journal["stages"][stage]
        (target / "journal.json").write_text(json.dumps(journal))
        (target / "fig5.txt").write_text("torn half-written artifact")
        (target / "fig6.txt").unlink()
        summary = run_stages(target, PARAMS, resume=True)
        assert summary.stages_run == ("fig5", "fig6", "fig7")
        assert summary.stages_skipped == STAGES[:-3]
        for name, blob in reference.items():
            assert (target / name).read_bytes() == blob, name


class TestJournalFile:
    def test_load_rejects_garbage(self, tmp_path):
        (tmp_path / "journal.json").write_text("{not json")
        with pytest.raises(PipelineError, match="unreadable"):
            RunJournal.load(tmp_path)

    def test_load_rejects_inconsistent_fingerprint(self, tmp_path):
        payload = {
            "fingerprint": "0" * 64,
            "params": RunParams().to_dict(),
            "stages": {},
        }
        (tmp_path / "journal.json").write_text(json.dumps(payload))
        with pytest.raises(PipelineError, match="inconsistent"):
            RunJournal.load(tmp_path)

    def test_journal_write_is_atomic(self, completed_run):
        run_dir, __ = completed_run
        assert not (run_dir / "journal.json.tmp").exists()
        data = json.loads((run_dir / "journal.json").read_text())
        assert data["fingerprint"] == PARAMS.fingerprint()
        assert set(data["stages"]) == set(STAGES)
