"""Tests for collection step 3 (US filter)."""

from repro.config import CollectionConfig
from repro.geo.geocoder import GeoMatch
from repro.pipeline.usfilter import is_us_located


class TestUsFilter:
    def test_us_state_passes(self):
        match = GeoMatch("US", "KS", 0.95, "comma-abbrev")
        assert is_us_located(match, CollectionConfig())

    def test_country_only_us_fails(self):
        """Country-level 'USA' is not enough: analyses are per-state."""
        match = GeoMatch("US", None, 0.6, "country")
        assert not is_us_located(match, CollectionConfig())

    def test_foreign_fails(self):
        match = GeoMatch("GB", None, 0.8, "foreign")
        assert not is_us_located(match, CollectionConfig())

    def test_unresolved_fails(self):
        assert not is_us_located(GeoMatch.unresolved(), CollectionConfig())

    def test_low_confidence_filtered(self):
        config = CollectionConfig(min_confidence=0.8)
        match = GeoMatch("US", "KS", 0.7, "state-nickname")
        assert not is_us_located(match, config)

    def test_confidence_threshold_inclusive(self):
        config = CollectionConfig(min_confidence=0.7)
        match = GeoMatch("US", "KS", 0.7, "state-nickname")
        assert is_us_located(match, config)
