"""Kill-at-every-syscall crash matrix for the incremental collector.

The strongest durability statement the storage layer can make: simulate
a power loss at *every single* mutating syscall index of a checkpointed
collection — mid-record, mid-fsync, mid-checkpoint-replace, between a
rename and its directory fsync — and after resuming on a healthy disk
the corpus is byte-identical to the never-crashed run, every time.
"""

import warnings

import pytest

from repro.faults.storage import SimulatedCrash, StorageFaultPlan
from repro.pipeline.incremental import IncrementalCollector
from repro.storage.fs import FaultyFS
from repro.storage.manifest import verify_file
from repro.twitter.models import Tweet, UserProfile

CHECKPOINT_EVERY = 4


def make_tweets(n: int) -> list[Tweet]:
    return [
        Tweet(
            tweet_id=i,
            user=UserProfile(
                user_id=i % 5, screen_name="u", location="Wichita, KS"
            ),
            text=f"kidney donor update {i}",
        )
        for i in range(n)
    ]


TWEETS = make_tweets(14)


def run_to_completion(directory, fs=None) -> bytes:
    collector = IncrementalCollector(directory / "corpus.jsonl", fs=fs)
    collector.run(TWEETS, checkpoint_every=CHECKPOINT_EVERY)
    return (directory / "corpus.jsonl").read_bytes()


@pytest.fixture(scope="module")
def baseline(tmp_path_factory) -> bytes:
    return run_to_completion(tmp_path_factory.mktemp("baseline"))


@pytest.fixture(scope="module")
def syscall_count(tmp_path_factory) -> int:
    probe = FaultyFS(StorageFaultPlan.none())
    run_to_completion(tmp_path_factory.mktemp("probe"), fs=probe)
    # The matrix must cover a real run: sink writes, periodic fsyncs,
    # checkpoint replaces, directory fsyncs, manifest writes.
    assert probe.syscalls > 40
    return probe.syscalls


def test_kill_at_every_syscall_recovers_byte_identical(
    baseline, syscall_count, tmp_path
):
    for kill_at in range(syscall_count):
        directory = tmp_path / f"kill{kill_at:03d}"
        directory.mkdir()
        corpus_path = directory / "corpus.jsonl"
        fs = FaultyFS(StorageFaultPlan(crash_at=kill_at))
        with pytest.raises(SimulatedCrash):
            IncrementalCollector(corpus_path, fs=fs).run(
                TWEETS, checkpoint_every=CHECKPOINT_EVERY
            )
        # The process restarts on a healthy disk and replays the slice.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resumed = IncrementalCollector(corpus_path)
            resumed.run(TWEETS, checkpoint_every=CHECKPOINT_EVERY)
        assert corpus_path.read_bytes() == baseline, (
            f"corpus diverged after crash at syscall #{kill_at}"
        )
        assert resumed.checkpoint.retained == len(TWEETS)
        assert verify_file(corpus_path).ok


def test_double_crash_still_recovers(baseline, syscall_count, tmp_path):
    """Crash during the run, then crash again during the *resume*."""
    first, second = syscall_count // 3, syscall_count // 2
    corpus_path = tmp_path / "corpus.jsonl"
    with pytest.raises(SimulatedCrash):
        IncrementalCollector(
            corpus_path, fs=FaultyFS(StorageFaultPlan(crash_at=first))
        ).run(TWEETS, checkpoint_every=CHECKPOINT_EVERY)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with pytest.raises(SimulatedCrash):
            IncrementalCollector(
                corpus_path, fs=FaultyFS(StorageFaultPlan(crash_at=second))
            ).run(TWEETS, checkpoint_every=CHECKPOINT_EVERY)
        final = IncrementalCollector(corpus_path)
        final.run(TWEETS, checkpoint_every=CHECKPOINT_EVERY)
    assert corpus_path.read_bytes() == baseline
