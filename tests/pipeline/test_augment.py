"""Tests for collection step 2 (location augmentation)."""

import pytest

from repro.config import CollectionConfig
from repro.geo.geocoder import Geocoder
from repro.pipeline.augment import augment_location
from repro.twitter.models import Place, Tweet, UserProfile


@pytest.fixture(scope="module")
def geocoder():
    return Geocoder()


def tweet(location: str = "", place: Place | None = None) -> Tweet:
    return Tweet(
        tweet_id=1,
        user=UserProfile(user_id=1, screen_name="u", location=location),
        text="kidney donor",
        place=place,
    )


class TestGeotagPriority:
    def test_geotag_preferred_over_profile(self, geocoder):
        record = tweet(location="Boston, MA", place=Place("Wichita, KS", "US"))
        match = augment_location(record, geocoder, CollectionConfig())
        assert match.state == "KS"
        assert match.source == "gps"
        assert match.confidence == 1.0

    def test_profile_used_when_no_geotag(self, geocoder):
        match = augment_location(
            tweet(location="Boston, MA"), geocoder, CollectionConfig()
        )
        assert match.state == "MA"
        assert match.source != "gps"

    def test_geotag_can_be_disabled(self, geocoder):
        config = CollectionConfig(prefer_geotag=False)
        record = tweet(location="Boston, MA", place=Place("Wichita, KS", "US"))
        assert augment_location(record, geocoder, config).state == "MA"

    def test_foreign_geotag_marks_non_us(self, geocoder):
        record = tweet(location="Boston, MA", place=Place("London", "GB"))
        match = augment_location(record, geocoder, CollectionConfig())
        assert match.country == "GB"
        assert not match.is_us_state

    def test_us_geotag_without_state(self, geocoder):
        record = tweet(place=Place("Middle of Nowhere", "US"))
        match = augment_location(record, geocoder, CollectionConfig())
        assert match.country == "US"
        assert match.state is None
        assert match.source == "gps"


class TestProfileFallback:
    def test_unresolvable_profile(self, geocoder):
        match = augment_location(
            tweet(location="the moon"), geocoder, CollectionConfig()
        )
        assert not match.resolved

    def test_empty_profile(self, geocoder):
        match = augment_location(tweet(), geocoder, CollectionConfig())
        assert not match.resolved
