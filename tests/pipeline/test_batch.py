"""Tests for the batched hot-path engine.

The batch engine inlines the keyword filter + :func:`process_matched`
funnel into one tight loop; these tests hold the two formulations in
lockstep — same records, same provenance counters — over a real
synthetic firehose, so any drift between the inlined conditions and
:func:`augment_location` / :func:`is_us_located` fails loudly.
"""

from __future__ import annotations

import pytest

from repro.config import CollectionConfig
from repro.geo.geocoder import Geocoder
from repro.nlp.keywords import build_query_set, track_phrases
from repro.nlp.matcher import OrganMatcher
from repro.pipeline.batch import BATCH_SIZE, iter_batches, process_stream
from repro.pipeline.runner import PipelineReport, process_matched
from repro.twitter.stream import TrackFilter


def _track_filter(config: CollectionConfig) -> TrackFilter:
    return TrackFilter(
        track_phrases(
            build_query_set(config.context_terms, config.subject_terms)
        )
    )


def _reference_run(source, config):
    """The unbatched formulation: keyword filter + process_matched."""
    report = PipelineReport()
    geocoder = Geocoder()
    matcher = OrganMatcher()
    track = _track_filter(config)
    tagged = []
    for position, tweet in enumerate(source):
        if not track.matches(tweet.text):
            report.stream_dropped += 1
            continue
        report.collected += 1
        record = process_matched(tweet, geocoder, matcher, config, report)
        if record is not None:
            tagged.append((position, record))
    return tagged, report


class TestIterBatches:
    def test_exact_multiple(self):
        batches = list(iter_batches(enumerate(range(6)), size=3))
        assert [len(b) for b in batches] == [3, 3]

    def test_ragged_tail(self):
        batches = list(iter_batches(enumerate(range(7)), size=3))
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_empty_source(self):
        assert list(iter_batches(iter(()), size=3)) == []

    def test_preserves_order_and_positions(self):
        batches = list(iter_batches(enumerate("abcde"), size=2))
        flat = [item for batch in batches for item in batch]
        assert flat == [(0, "a"), (1, "b"), (2, "c"), (3, "d"), (4, "e")]

    def test_default_size(self):
        batches = list(iter_batches(enumerate(range(BATCH_SIZE + 1))))
        assert [len(b) for b in batches] == [BATCH_SIZE, 1]


class TestBatchFunnelLockstep:
    @pytest.fixture(scope="class")
    def firehose(self, small_world):
        return list(small_world.firehose())

    def test_records_and_report_identical(self, firehose):
        config = CollectionConfig()
        expected_records, expected_report = _reference_run(firehose, config)

        report = PipelineReport()
        records = process_stream(
            enumerate(firehose),
            config,
            _track_filter(config),
            Geocoder(),
            OrganMatcher(),
            report,
        )

        assert records == expected_records
        assert report == expected_report
        assert report.retained == len(records) > 0

    def test_batch_size_does_not_change_results(self, firehose):
        config = CollectionConfig()
        sample = firehose[:3_000]

        def run_with_batch_size(size):
            report = PipelineReport()
            records = process_stream(
                enumerate(sample),
                config,
                _track_filter(config),
                Geocoder(),
                OrganMatcher(),
                report,
                batch_size=size,
            )
            return records, report

        baseline = run_with_batch_size(2048)
        assert run_with_batch_size(7) == baseline
        assert run_with_batch_size(len(sample) + 10) == baseline

    def test_positions_ascending(self, firehose):
        config = CollectionConfig()
        report = PipelineReport()
        records = process_stream(
            enumerate(firehose[:5_000]),
            config,
            _track_filter(config),
            Geocoder(),
            OrganMatcher(),
            report,
        )
        positions = [position for position, __ in records]
        assert positions == sorted(positions)

    def test_counters_account_for_every_tweet(self, firehose):
        config = CollectionConfig()
        report = PipelineReport()
        sample = firehose[:5_000]
        process_stream(
            enumerate(sample),
            config,
            _track_filter(config),
            Geocoder(),
            OrganMatcher(),
            report,
        )
        assert report.stream_dropped + report.collected == len(sample)
        assert (
            report.unresolved
            + report.located_gps
            + report.located_profile
            == report.collected
        )
        assert (
            report.non_us + report.us_located
            == report.located_gps + report.located_profile
        )
        assert report.no_mentions + report.retained == report.us_located
