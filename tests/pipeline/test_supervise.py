"""Tests for the supervised process pool: retries, deadlines, quarantine."""

import multiprocessing

import pytest

from repro.errors import ConfigError
from repro.faults.compute import (
    InjectedComputeError,
    WorkerFault,
    WorkerFaultPlan,
)
from repro.procpool import pool_context, reaped
from repro.supervise import (
    ComputeDeadLetter,
    RawResult,
    RunHealth,
    SupervisorPolicy,
    ensure_supervisable,
    run_supervised,
)


def square(x: int) -> int:
    return x * x


def boom(x: int) -> int:
    raise ValueError(f"bad task {x}")


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = SupervisorPolicy()
        assert policy.max_retries == 2

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"task_timeout": 0.0},
        {"task_timeout": -1.0},
        {"heartbeat_interval": 0.0},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SupervisorPolicy(**kwargs)

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigError):
            run_supervised(square, [1], workers=0)

    def test_labels_must_match_tasks(self):
        with pytest.raises(ConfigError):
            run_supervised(square, [1, 2], labels=["only one"])


class TestEnsureSupervisable:
    def test_hangs_require_a_deadline(self):
        with pytest.raises(ConfigError):
            ensure_supervisable(
                SupervisorPolicy(), WorkerFaultPlan(hang_rate=0.5)
            )

    def test_hang_must_exceed_deadline(self):
        with pytest.raises(ConfigError):
            ensure_supervisable(
                SupervisorPolicy(task_timeout=60.0),
                WorkerFaultPlan(hang_rate=0.5, hang_seconds=30.0),
            )

    def test_slow_must_fit_inside_deadline(self):
        with pytest.raises(ConfigError):
            ensure_supervisable(
                SupervisorPolicy(task_timeout=0.5),
                WorkerFaultPlan(slow_rate=0.5, slow_seconds=1.0),
            )

    def test_rate_faults_must_stop_before_retries_run_out(self):
        with pytest.raises(ConfigError):
            ensure_supervisable(
                SupervisorPolicy(max_retries=1),
                WorkerFaultPlan(crash_rate=0.5, max_faulted_attempts=2),
            )

    def test_poison_tasks_are_exempt(self):
        ensure_supervisable(
            SupervisorPolicy(max_retries=0), WorkerFaultPlan(poison_tasks=(3,))
        )

    def test_compatible_plan_accepted(self):
        ensure_supervisable(
            SupervisorPolicy(max_retries=2, task_timeout=1.0),
            WorkerFaultPlan(
                hang_rate=0.2, hang_seconds=30.0, slow_rate=0.2,
                slow_seconds=0.01,
            ),
        )


class TestCleanRuns:
    def test_results_are_position_ordered(self):
        results, health = run_supervised(square, [3, 1, 4, 1, 5], workers=2)
        assert results == [9, 1, 16, 1, 25]
        assert health.completed == 5
        assert not health.degraded
        assert health.failed_attempts == 0

    def test_empty_task_list(self):
        results, health = run_supervised(square, [], workers=2)
        assert results == []
        assert health.tasks == 0

    def test_no_lingering_children(self):
        run_supervised(square, list(range(8)), workers=4)
        assert multiprocessing.active_children() == []


def raw_frame(x: int) -> RawResult:
    return RawResult(b"frame:" + str(x).encode())


def raw_or_object(x: int) -> RawResult | int:
    if x % 2 == 0:
        return raw_frame(x)
    return x


class TestRawResults:
    def test_raw_payloads_skip_pickling_and_round_trip(self):
        results, health = run_supervised(raw_frame, [1, 2, 3], workers=2)
        assert results == [
            RawResult(b"frame:1"), RawResult(b"frame:2"), RawResult(b"frame:3"),
        ]
        assert health.completed == 3

    def test_raw_and_object_results_can_mix(self):
        results, __ = run_supervised(raw_or_object, [0, 1, 2, 3], workers=2)
        assert results == [RawResult(b"frame:0"), 1, RawResult(b"frame:2"), 3]

    def test_raw_result_survives_retries(self):
        plan = WorkerFaultPlan(seed=1, crash_rate=1.0, max_faulted_attempts=1)
        results, health = run_supervised(
            raw_frame, [7], workers=1,
            policy=SupervisorPolicy(max_retries=1), fault_plan=plan,
        )
        assert results == [RawResult(b"frame:7")]
        assert health.retries == 1


class TestFaultRecovery:
    def test_crashes_are_retried(self):
        plan = WorkerFaultPlan(seed=1, crash_rate=1.0, max_faulted_attempts=1)
        results, health = run_supervised(
            square, [2, 3], workers=2,
            policy=SupervisorPolicy(max_retries=1), fault_plan=plan,
        )
        assert results == [4, 9]
        assert health.worker_crashes == 2
        assert health.retries == 2
        assert not health.degraded

    def test_task_exceptions_are_retried_with_traceback(self):
        plan = WorkerFaultPlan(
            seed=1, exception_rate=1.0, max_faulted_attempts=1
        )
        results, health = run_supervised(
            square, [2], workers=1,
            policy=SupervisorPolicy(max_retries=1), fault_plan=plan,
        )
        assert results == [4]
        assert health.task_errors == 1

    def test_hung_worker_is_killed_at_the_deadline(self):
        plan = WorkerFaultPlan(
            seed=1, hang_rate=1.0, hang_seconds=30.0, max_faulted_attempts=1
        )
        results, health = run_supervised(
            square, [6], workers=1,
            policy=SupervisorPolicy(max_retries=1, task_timeout=0.3),
            fault_plan=plan,
        )
        assert results == [36]
        assert health.worker_timeouts == 1

    def test_slow_task_is_not_mistaken_for_death(self):
        plan = WorkerFaultPlan(
            seed=1, slow_rate=1.0, slow_seconds=0.05, max_faulted_attempts=1
        )
        results, health = run_supervised(
            square, [7], workers=1,
            policy=SupervisorPolicy(task_timeout=5.0), fault_plan=plan,
        )
        assert results == [7 * 7]
        assert health.failed_attempts == 0

    def test_real_task_bug_exhausts_retries_and_quarantines(self):
        results, health = run_supervised(
            boom, [1], workers=1, policy=SupervisorPolicy(max_retries=1),
        )
        assert results == [None]
        assert health.degraded
        letter = health.dead_letters[0]
        assert letter.attempts == 2
        assert "bad task 1" in letter.failures[-1]


class TestQuarantine:
    def test_poison_task_is_dead_lettered_with_label(self):
        plan = WorkerFaultPlan(seed=1, poison_tasks=(2,))
        results, health = run_supervised(
            square, [1, 2, 3, 4], workers=2,
            policy=SupervisorPolicy(max_retries=1), fault_plan=plan,
            labels=[f"shard {i}" for i in range(4)],
        )
        assert results == [1, 4, None, 16]
        assert health.quarantined == 1
        assert health.dead_letters[0].label == "shard 2"
        assert health.dead_letters[0].attempts == 2
        assert all("exit code 23" in f for f in health.dead_letters[0].failures)

    def test_quarantine_never_hangs_the_run(self):
        plan = WorkerFaultPlan(seed=1, poison_tasks=(0,))
        results, health = run_supervised(
            square, [1], workers=1,
            policy=SupervisorPolicy(max_retries=0), fault_plan=plan,
        )
        assert results == [None]
        assert health.completed == 0
        assert multiprocessing.active_children() == []


class TestRunHealth:
    def make_health(self) -> RunHealth:
        return RunHealth(
            tasks=4, completed=3, retries=2, worker_crashes=1,
            worker_timeouts=1, task_errors=0, quarantined=1,
            dead_letters=[
                ComputeDeadLetter(
                    task_index=2, label="shard 2", attempts=2,
                    failures=("attempt 1: x", "attempt 2: y"),
                )
            ],
        )

    def test_round_trips_through_dict(self):
        health = self.make_health()
        assert RunHealth.from_dict(health.to_dict()) == health

    def test_summary_lines_name_the_quarantined_task(self):
        lines = self.make_health().summary_lines()
        assert any("shard 2" in line for line in lines)

    def test_merge_sums_counters_and_chains_dead_letters(self):
        merged = self.make_health().merge(self.make_health())
        assert merged.tasks == 8
        assert merged.quarantined == 2
        assert len(merged.dead_letters) == 2

    def test_satisfies_health_protocol(self):
        from repro.health import HealthReport

        assert isinstance(self.make_health(), HealthReport)

    def test_injected_error_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(InjectedComputeError, ReproError)


class TestWorkerFaultPlan:
    def test_schedule_is_deterministic(self):
        plan = WorkerFaultPlan.chaos(seed=9)
        first = [plan.fault_for(t, a) for t in range(50) for a in range(3)]
        second = [plan.fault_for(t, a) for t in range(50) for a in range(3)]
        assert first == second

    def test_faults_stop_after_max_faulted_attempts(self):
        plan = WorkerFaultPlan(seed=9, crash_rate=1.0, max_faulted_attempts=2)
        assert plan.fault_for(0, 0) is WorkerFault.CRASH
        assert plan.fault_for(0, 1) is WorkerFault.CRASH
        assert plan.fault_for(0, 2) is None

    def test_poison_tasks_crash_on_every_attempt(self):
        plan = WorkerFaultPlan(seed=9, poison_tasks=(5,))
        assert all(
            plan.fault_for(5, a) is WorkerFault.CRASH for a in range(10)
        )

    @pytest.mark.parametrize("kwargs", [
        {"crash_rate": 1.5},
        {"hang_rate": -0.1},
        {"crash_exit_code": 0},
        {"crash_exit_code": 256},
        {"hang_seconds": 0.0},
        {"slow_seconds": -1.0},
        {"max_faulted_attempts": -1},
        {"poison_tasks": (-1,)},
    ])
    def test_invalid_plan_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            WorkerFaultPlan(**kwargs)

    def test_describe_names_active_faults(self):
        text = WorkerFaultPlan(crash_rate=0.3, poison_tasks=(1,)).describe()
        assert "crash_rate=0.3" in text
        assert "poison_tasks=(1,)" in text
        assert "no faults" in WorkerFaultPlan.none().describe()

    def test_any_faults(self):
        assert not WorkerFaultPlan.none().any_faults
        assert WorkerFaultPlan.chaos().any_faults
        assert WorkerFaultPlan(poison_tasks=(0,)).any_faults


class TestReaped:
    def test_children_are_terminated_on_exception(self):
        ctx = pool_context()
        with pytest.raises(RuntimeError):
            with reaped() as registry:
                for __ in range(3):
                    proc = ctx.Process(target=_sleep_forever, daemon=True)
                    proc.start()
                    registry.append(proc)
                raise RuntimeError("parent dies mid-fan-out")
        assert multiprocessing.active_children() == []

    def test_failed_supervised_run_leaves_no_children(self):
        """A raised quarantine (KMeans-style) must not strand workers."""
        from repro.errors import ClusteringError

        def run_and_raise():
            __, health = run_supervised(
                square, [1, 2, 3], workers=3,
                policy=SupervisorPolicy(max_retries=0),
                fault_plan=WorkerFaultPlan(seed=1, poison_tasks=(1,)),
            )
            if health.degraded:
                raise ClusteringError("quarantined")

        with pytest.raises(ClusteringError):
            run_and_raise()
        assert multiprocessing.active_children() == []


def _sleep_forever() -> None:  # pragma: no cover - killed by reaped()
    import time

    time.sleep(600)
