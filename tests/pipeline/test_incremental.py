"""Tests for resumable collection."""

import json

import pytest

from repro.errors import PipelineError
from repro.pipeline.incremental import IncrementalCollector
from repro.twitter.models import Tweet, UserProfile


def tweet(tweet_id: int, text: str = "kidney donor",
          location: str = "Wichita, KS") -> Tweet:
    return Tweet(
        tweet_id=tweet_id,
        user=UserProfile(user_id=tweet_id % 7, screen_name="u",
                         location=location),
        text=text,
    )


@pytest.fixture()
def paths(tmp_path):
    return tmp_path / "corpus.jsonl", tmp_path / "corpus.jsonl.checkpoint.json"


class TestBasicCollection:
    def test_writes_and_checkpoints(self, paths):
        corpus_path, checkpoint_path = paths
        collector = IncrementalCollector(corpus_path)
        written = collector.run([tweet(i) for i in range(10)])
        assert written == 10
        assert checkpoint_path.exists()
        state = json.loads(checkpoint_path.read_text())
        assert state["last_tweet_id"] == 9
        assert state["retained"] == 10

    def test_filters_apply(self, paths):
        corpus_path, __ = paths
        collector = IncrementalCollector(corpus_path)
        written = collector.run([
            tweet(1),
            tweet(2, text="nice sunset"),          # off-topic
            tweet(3, location="London"),            # non-US
            tweet(4, location="the moon"),          # unresolvable
        ])
        assert written == 1

    def test_load_corpus(self, paths):
        corpus_path, __ = paths
        collector = IncrementalCollector(corpus_path)
        collector.run([tweet(i) for i in range(5)])
        corpus = collector.load_corpus()
        assert len(corpus) == 5


class TestResume:
    def test_resume_continues_without_duplicates(self, paths):
        corpus_path, __ = paths
        first = IncrementalCollector(corpus_path)
        first.run([tweet(i) for i in range(5)])

        # New collector instance (process restart) over an overlapping
        # slice: ids 0-4 must be skipped, 5-9 processed.
        second = IncrementalCollector(corpus_path)
        written = second.run([tweet(i) for i in range(10)])
        assert written == 5
        corpus = second.load_corpus()
        ids = sorted(record.tweet.tweet_id for record in corpus)
        assert ids == list(range(10))

    def test_idempotent_replay(self, paths):
        corpus_path, __ = paths
        collector = IncrementalCollector(corpus_path)
        collector.run([tweet(i) for i in range(5)])
        again = IncrementalCollector(corpus_path)
        assert again.run([tweet(i) for i in range(5)]) == 0

    def test_counters_cumulative(self, paths):
        corpus_path, __ = paths
        IncrementalCollector(corpus_path).run([tweet(i) for i in range(4)])
        collector = IncrementalCollector(corpus_path)
        collector.run([tweet(i) for i in range(4, 8)])
        assert collector.checkpoint.retained == 8
        assert collector.checkpoint.seen == 8

    def test_mid_stream_checkpointing(self, paths):
        corpus_path, checkpoint_path = paths
        collector = IncrementalCollector(corpus_path)
        collector.run([tweet(i) for i in range(7)], checkpoint_every=2)
        state = json.loads(checkpoint_path.read_text())
        assert state["last_tweet_id"] == 6


class TestFailureModes:
    def test_corrupt_checkpoint_raises(self, paths):
        corpus_path, checkpoint_path = paths
        checkpoint_path.write_text("{not json")
        with pytest.raises(PipelineError, match="corrupt checkpoint"):
            IncrementalCollector(corpus_path)

    def test_invalid_checkpoint_every(self, paths):
        corpus_path, __ = paths
        collector = IncrementalCollector(corpus_path)
        with pytest.raises(PipelineError):
            collector.run([], checkpoint_every=0)

    def test_empty_stream_noop(self, paths):
        corpus_path, __ = paths
        collector = IncrementalCollector(corpus_path)
        assert collector.run([]) == 0


def interrupted(tweets, kill_at: int):
    """A source that dies (process kill) after yielding ``kill_at`` tweets."""
    def generator():
        for index, item in enumerate(tweets):
            if index == kill_at:
                raise RuntimeError("killed")
            yield item
    return generator()


class TestCrashRecovery:
    """A kill at any instant must resume with no dups and no drops."""

    def baseline_bytes(self, tmp_path, tweets) -> bytes:
        path = tmp_path / "baseline.jsonl"
        IncrementalCollector(path).run(iter(tweets), checkpoint_every=10)
        return path.read_bytes()

    def test_kill_mid_batch(self, tmp_path):
        tweets = [tweet(i) for i in range(50)]
        expected = self.baseline_bytes(tmp_path, tweets)

        corpus_path = tmp_path / "corpus.jsonl"
        with pytest.raises(RuntimeError):
            IncrementalCollector(corpus_path).run(
                interrupted(tweets, 37), checkpoint_every=10
            )
        # Records 30-36 were flushed on close but never checkpointed:
        # recovery must adopt them so the replay cannot duplicate them.
        with pytest.warns(UserWarning, match="adopted"):
            resumed = IncrementalCollector(corpus_path)
        assert resumed.checkpoint.last_tweet_id == 36
        resumed.run(iter(tweets), checkpoint_every=10)
        assert corpus_path.read_bytes() == expected

    def test_kill_mid_jsonl_line(self, tmp_path):
        tweets = [tweet(i) for i in range(20)]
        expected = self.baseline_bytes(tmp_path, tweets)

        corpus_path = tmp_path / "corpus.jsonl"
        with pytest.raises(RuntimeError):
            IncrementalCollector(corpus_path).run(
                interrupted(tweets, 13), checkpoint_every=5
            )
        # Tear the final record mid-line, as a kill during the write
        # syscall would.
        data = corpus_path.read_bytes()
        corpus_path.write_bytes(data[:-17])
        with pytest.warns(UserWarning) as caught:
            resumed = IncrementalCollector(corpus_path)
        messages = [str(w.message) for w in caught]
        assert any("torn" in m for m in messages)
        assert any("adopted" in m for m in messages)
        resumed.run(iter(tweets), checkpoint_every=5)
        assert corpus_path.read_bytes() == expected

    def test_kill_mid_checkpoint_write(self, tmp_path):
        tweets = [tweet(i) for i in range(20)]
        expected = self.baseline_bytes(tmp_path, tweets)

        corpus_path = tmp_path / "corpus.jsonl"
        collector = IncrementalCollector(corpus_path)
        collector.run(iter(tweets[:10]), checkpoint_every=5)
        # A kill during checkpoint write leaves a garbage temp file; the
        # real checkpoint is intact because the replace never happened.
        tmp_checkpoint = tmp_path / "corpus.jsonl.checkpoint.json.tmp"
        tmp_checkpoint.write_text('{"last_tweet_id": 9, "se')
        resumed = IncrementalCollector(corpus_path)
        assert resumed.checkpoint.last_tweet_id == 9
        resumed.run(iter(tweets), checkpoint_every=5)
        assert corpus_path.read_bytes() == expected
        assert not tmp_checkpoint.exists()  # consumed by os.replace

    def test_failed_checkpoint_replace_preserves_old_state(
        self, paths, monkeypatch
    ):
        corpus_path, checkpoint_path = paths
        collector = IncrementalCollector(corpus_path)
        collector.run([tweet(i) for i in range(5)])
        before = checkpoint_path.read_text()

        def broken_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(
            "repro.pipeline.incremental.os.replace", broken_replace
        )
        with pytest.raises(OSError):
            collector.run([tweet(i) for i in range(5, 10)])
        assert checkpoint_path.read_text() == before

    def test_mid_file_corruption_still_raises(self, paths):
        from repro.errors import SerializationError

        corpus_path, __ = paths
        IncrementalCollector(corpus_path).run([tweet(i) for i in range(5)])
        lines = corpus_path.read_text().splitlines(keepends=True)
        lines[2] = '{"torn": \n'
        corpus_path.write_text("".join(lines))
        with pytest.raises(SerializationError, match=":3"):
            IncrementalCollector(corpus_path)


class TestEquivalenceWithBatchPipeline:
    def test_same_records_as_one_shot_pipeline(self, tmp_path, small_world):
        """Incremental collection over the firehose must retain exactly
        what the batch pipeline retains."""
        from itertools import islice

        from repro.pipeline.runner import CollectionPipeline

        slice_of_world = list(islice(small_world.firehose(), 3000))
        batch_corpus, __ = CollectionPipeline().run(iter(slice_of_world))

        collector = IncrementalCollector(tmp_path / "inc.jsonl")
        # Split the same slice across three separate runs.
        collector.run(iter(slice_of_world[:1000]))
        collector = IncrementalCollector(tmp_path / "inc.jsonl")
        collector.run(iter(slice_of_world[1000:2200]))
        collector.run(iter(slice_of_world[2200:]))
        incremental_corpus = collector.load_corpus()

        assert len(incremental_corpus) == len(batch_corpus)
        assert incremental_corpus.user_ids() == batch_corpus.user_ids()
