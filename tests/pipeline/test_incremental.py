"""Tests for resumable collection."""

import json

import pytest

from repro.errors import PipelineError
from repro.pipeline.incremental import IncrementalCollector
from repro.twitter.models import Tweet, UserProfile


def tweet(tweet_id: int, text: str = "kidney donor",
          location: str = "Wichita, KS") -> Tweet:
    return Tweet(
        tweet_id=tweet_id,
        user=UserProfile(user_id=tweet_id % 7, screen_name="u",
                         location=location),
        text=text,
    )


@pytest.fixture()
def paths(tmp_path):
    return tmp_path / "corpus.jsonl", tmp_path / "corpus.jsonl.checkpoint.json"


class TestBasicCollection:
    def test_writes_and_checkpoints(self, paths):
        corpus_path, checkpoint_path = paths
        collector = IncrementalCollector(corpus_path)
        written = collector.run([tweet(i) for i in range(10)])
        assert written == 10
        assert checkpoint_path.exists()
        state = json.loads(checkpoint_path.read_text())
        assert state["last_tweet_id"] == 9
        assert state["retained"] == 10

    def test_filters_apply(self, paths):
        corpus_path, __ = paths
        collector = IncrementalCollector(corpus_path)
        written = collector.run([
            tweet(1),
            tweet(2, text="nice sunset"),          # off-topic
            tweet(3, location="London"),            # non-US
            tweet(4, location="the moon"),          # unresolvable
        ])
        assert written == 1

    def test_load_corpus(self, paths):
        corpus_path, __ = paths
        collector = IncrementalCollector(corpus_path)
        collector.run([tweet(i) for i in range(5)])
        corpus = collector.load_corpus()
        assert len(corpus) == 5


class TestResume:
    def test_resume_continues_without_duplicates(self, paths):
        corpus_path, __ = paths
        first = IncrementalCollector(corpus_path)
        first.run([tweet(i) for i in range(5)])

        # New collector instance (process restart) over an overlapping
        # slice: ids 0-4 must be skipped, 5-9 processed.
        second = IncrementalCollector(corpus_path)
        written = second.run([tweet(i) for i in range(10)])
        assert written == 5
        corpus = second.load_corpus()
        ids = sorted(record.tweet.tweet_id for record in corpus)
        assert ids == list(range(10))

    def test_idempotent_replay(self, paths):
        corpus_path, __ = paths
        collector = IncrementalCollector(corpus_path)
        collector.run([tweet(i) for i in range(5)])
        again = IncrementalCollector(corpus_path)
        assert again.run([tweet(i) for i in range(5)]) == 0

    def test_counters_cumulative(self, paths):
        corpus_path, __ = paths
        IncrementalCollector(corpus_path).run([tweet(i) for i in range(4)])
        collector = IncrementalCollector(corpus_path)
        collector.run([tweet(i) for i in range(4, 8)])
        assert collector.checkpoint.retained == 8
        assert collector.checkpoint.seen == 8

    def test_mid_stream_checkpointing(self, paths):
        corpus_path, checkpoint_path = paths
        collector = IncrementalCollector(corpus_path)
        collector.run([tweet(i) for i in range(7)], checkpoint_every=2)
        state = json.loads(checkpoint_path.read_text())
        assert state["last_tweet_id"] == 6


class TestFailureModes:
    def test_corrupt_checkpoint_raises(self, paths):
        corpus_path, checkpoint_path = paths
        checkpoint_path.write_text("{not json")
        with pytest.raises(PipelineError, match="corrupt checkpoint"):
            IncrementalCollector(corpus_path)

    def test_invalid_checkpoint_every(self, paths):
        corpus_path, __ = paths
        collector = IncrementalCollector(corpus_path)
        with pytest.raises(PipelineError):
            collector.run([], checkpoint_every=0)

    def test_empty_stream_noop(self, paths):
        corpus_path, __ = paths
        collector = IncrementalCollector(corpus_path)
        assert collector.run([]) == 0


class TestEquivalenceWithBatchPipeline:
    def test_same_records_as_one_shot_pipeline(self, tmp_path, small_world):
        """Incremental collection over the firehose must retain exactly
        what the batch pipeline retains."""
        from itertools import islice

        from repro.pipeline.runner import CollectionPipeline

        slice_of_world = list(islice(small_world.firehose(), 3000))
        batch_corpus, __ = CollectionPipeline().run(iter(slice_of_world))

        collector = IncrementalCollector(tmp_path / "inc.jsonl")
        # Split the same slice across three separate runs.
        collector.run(iter(slice_of_world[:1000]))
        collector = IncrementalCollector(tmp_path / "inc.jsonl")
        collector.run(iter(slice_of_world[1000:2200]))
        collector.run(iter(slice_of_world[2200:]))
        incremental_corpus = collector.load_corpus()

        assert len(incremental_corpus) == len(batch_corpus)
        assert incremental_corpus.user_ids() == batch_corpus.user_ids()
