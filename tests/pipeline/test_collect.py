"""Tests for collection step 1 (keyword filtering)."""

from repro.config import CollectionConfig
from repro.pipeline.collect import collect
from repro.twitter.models import Tweet, UserProfile
from repro.twitter.stream import FilteredStream


def tweet(text: str, tweet_id: int = 0) -> Tweet:
    return Tweet(
        tweet_id=tweet_id,
        user=UserProfile(user_id=1, screen_name="u"),
        text=text,
    )


class TestCollect:
    def test_returns_stream(self):
        stream = collect([], CollectionConfig())
        assert isinstance(stream, FilteredStream)

    def test_admits_context_plus_subject(self):
        source = [tweet("be a kidney donor", 1)]
        assert [t.tweet_id for t in collect(source, CollectionConfig())] == [1]

    def test_rejects_context_only(self):
        source = [tweet("please donate to charity")]
        assert list(collect(source, CollectionConfig())) == []

    def test_rejects_subject_only(self):
        source = [tweet("my heart is full")]
        assert list(collect(source, CollectionConfig())) == []

    def test_cross_pair_matching(self):
        """Any Context with any Subject matches — the Cartesian product."""
        source = [
            tweet("liver recipient meets her hero", 1),
            tweet("pancreas waitlist updates", 2),
            tweet("intestinal transplantation summit", 3),
        ]
        collected = [t.tweet_id for t in collect(source, CollectionConfig())]
        assert collected == [1, 2, 3]

    def test_custom_vocabulary_narrows_collection(self):
        config = CollectionConfig(
            context_terms=("donor",), subject_terms=("kidney",)
        )
        source = [
            tweet("kidney donor", 1),
            tweet("kidney transplant", 2),  # context not in custom set
            tweet("liver donor", 3),        # subject not in custom set
        ]
        assert [t.tweet_id for t in collect(source, config)] == [1]

    def test_counters_track_drops(self):
        source = [tweet("kidney donor"), tweet("sunset"), tweet("rainbow")]
        stream = collect(source, CollectionConfig())
        list(stream)
        assert stream.delivered == 1
        assert stream.dropped == 2
