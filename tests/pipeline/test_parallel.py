"""Tests for the sharded parallel pipeline."""

import json

import pytest

from repro.config import CollectionConfig
from repro.errors import ConfigError, PipelineError
from repro.pipeline.parallel import process_shard, run_sharded, shard_by_id
from repro.pipeline.runner import CollectionPipeline, PipelineReport
from repro.twitter.models import Tweet, UserProfile
from repro.twitter.resilient import ReliabilityReport


def tweet(text: str, location: str, tweet_id: int, user_id: int = 1) -> Tweet:
    return Tweet(
        tweet_id=tweet_id,
        user=UserProfile(user_id=user_id, screen_name=f"u{user_id}",
                         location=location),
        text=text,
    )


def corpus_bytes(corpus) -> bytes:
    return "\n".join(
        json.dumps(record.to_dict(), ensure_ascii=False)
        for record in corpus.records
    ).encode("utf-8")


class TestSharding:
    def test_round_robin_by_tweet_id(self):
        tweets = [tweet("kidney donor", "Wichita, KS", i) for i in range(10)]
        shards = shard_by_id(tweets, 3)
        for shard_index, shard in enumerate(shards):
            assert all(t.tweet_id % 3 == shard_index for __, t in shard)
        assert sum(len(shard) for shard in shards) == 10

    def test_positions_preserve_stream_order(self):
        tweets = [tweet("kidney donor", "Wichita, KS", i * 7) for i in range(9)]
        shards = shard_by_id(tweets, 4)
        flattened = sorted(
            (position for shard in shards for position, __ in shard)
        )
        assert flattened == list(range(9))

    def test_deterministic(self):
        tweets = [tweet("kidney donor", "Wichita, KS", i) for i in range(20)]
        assert shard_by_id(tweets, 4) == shard_by_id(tweets, 4)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigError):
            shard_by_id([], 0)


class TestReportMerge:
    def test_counters_sum(self):
        a = PipelineReport(collected=3, retained=2, non_us=1, us_located=2)
        b = PipelineReport(collected=5, retained=1, unresolved=4, us_located=1)
        merged = a.merge(b)
        assert merged.collected == 8
        assert merged.retained == 3
        assert merged.non_us == 1
        assert merged.unresolved == 4
        assert merged.us_located == 3

    def test_merge_is_commutative(self):
        a = PipelineReport(collected=3, retained=2)
        b = PipelineReport(collected=5, no_mentions=1)
        assert a.merge(b) == b.merge(a)

    def test_identity_merge(self):
        a = PipelineReport(collected=3, retained=2)
        assert a.merge(PipelineReport()) == a

    def test_single_reliability_carried(self):
        reliability = ReliabilityReport()
        a = PipelineReport(reliability=reliability)
        b = PipelineReport()
        assert a.merge(b).reliability is reliability
        assert b.merge(a).reliability is reliability

    def test_two_reliability_reports_rejected(self):
        a = PipelineReport(reliability=ReliabilityReport())
        b = PipelineReport(reliability=ReliabilityReport())
        with pytest.raises(PipelineError):
            a.merge(b)

    def test_single_compute_health_carried(self):
        from repro.supervise import RunHealth

        health = RunHealth(tasks=2, completed=2)
        a = PipelineReport(compute=health)
        b = PipelineReport()
        assert a.merge(b).compute is health
        assert b.merge(a).compute is health

    def test_two_compute_reports_rejected(self):
        from repro.supervise import RunHealth

        a = PipelineReport(compute=RunHealth())
        b = PipelineReport(compute=RunHealth())
        with pytest.raises(PipelineError):
            a.merge(b)

    def test_report_round_trips_with_both_health_layers(self):
        from repro.supervise import RunHealth

        report = PipelineReport(
            collected=10, retained=4,
            reliability=ReliabilityReport(delivered=10, connects=2),
            compute=RunHealth(tasks=2, completed=2),
        )
        assert PipelineReport.from_dict(report.to_dict()) == report


class TestProcessShard:
    def test_counts_and_records(self):
        config = CollectionConfig()
        shard = [
            (0, tweet("kidney donor", "Wichita, KS", 0)),
            (1, tweet("nice sunset", "Wichita, KS", 2)),
            (2, tweet("kidney donor", "London", 4)),
        ]
        records, report = process_shard(shard, config)
        assert report.stream_dropped == 1
        assert report.collected == 2
        assert report.non_us == 1
        assert report.retained == 1
        assert [position for position, __ in records] == [0]


class TestRunSharded:
    def make_source(self, n: int = 40):
        locations = ["Wichita, KS", "London", "the moon", "Boston, MA"]
        texts = ["kidney donor", "nice sunset", "liver transplant"]
        return [
            tweet(texts[i % 3], locations[i % 4], i, user_id=i % 5)
            for i in range(n)
        ]

    def test_matches_serial_for_worker_counts(self):
        source = self.make_source()
        serial_corpus, serial_report = CollectionPipeline().run(source)
        for workers in (1, 2, 4):
            corpus, report = CollectionPipeline().run(source, workers=workers)
            assert corpus_bytes(corpus) == corpus_bytes(serial_corpus)
            if workers > 1:
                # Supervised runs additionally document pool health.
                assert report.compute is not None
                assert not report.compute.degraded
                report.compute = None
            assert report == serial_report

    def test_empty_result_raises(self):
        with pytest.raises(PipelineError):
            CollectionPipeline().run(
                [tweet("nice sunset", "Wichita, KS", 1)], workers=2
            )

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigError):
            CollectionPipeline().run(self.make_source(), workers=0)

    def test_run_sharded_returns_stream_order(self):
        source = self.make_source()
        records, __ = run_sharded(source, CollectionConfig(), 3)
        ids = [record.tweet.tweet_id for record in records]
        assert ids == sorted(ids)
