"""Tests for the composed pipeline."""

import pytest

from repro.errors import PipelineError
from repro.pipeline.runner import CollectionPipeline
from repro.twitter.models import Place, Tweet, UserProfile


def tweet(text: str, location: str = "", tweet_id: int = 0,
          user_id: int = 1, place: Place | None = None) -> Tweet:
    return Tweet(
        tweet_id=tweet_id,
        user=UserProfile(user_id=user_id, screen_name=f"u{user_id}",
                         location=location),
        text=text,
        place=place,
    )


class TestPipelineComposition:
    def test_happy_path(self):
        source = [tweet("be a kidney donor", "Wichita, KS", 1)]
        corpus, report = CollectionPipeline().run(source)
        assert len(corpus) == 1
        assert report.retained == 1
        assert corpus.records[0].state == "KS"

    def test_off_topic_dropped_at_stream(self):
        source = [
            tweet("nice sunset", "Wichita, KS", 1),
            tweet("kidney donor", "Wichita, KS", 2),
        ]
        corpus, report = CollectionPipeline().run(source)
        assert report.stream_dropped == 1
        assert report.collected == 1
        assert len(corpus) == 1

    def test_foreign_dropped_at_us_filter(self):
        source = [
            tweet("kidney donor", "London", 1),
            tweet("kidney donor", "Wichita, KS", 2),
        ]
        corpus, report = CollectionPipeline().run(source)
        assert report.non_us == 1
        assert report.retained == 1

    def test_unresolved_counted(self):
        source = [
            tweet("kidney donor", "the moon", 1),
            tweet("kidney donor", "Wichita, KS", 2),
        ]
        __, report = CollectionPipeline().run(source)
        assert report.unresolved == 1

    def test_gps_counted_separately(self):
        source = [
            tweet("kidney donor", place=Place("Topeka, KS", "US"), tweet_id=1),
            tweet("kidney donor", "Wichita, KS", 2),
        ]
        __, report = CollectionPipeline().run(source)
        assert report.located_gps == 1
        assert report.located_profile == 1

    def test_counters_are_exhaustive(self):
        """Every collected tweet lands in exactly one outcome counter."""
        source = [
            tweet("kidney donor", "Wichita, KS", 1),
            tweet("liver transplant", "London", 2),
            tweet("heart donor", "the moon", 3),
            tweet("sunset pics", "Wichita, KS", 4),
        ]
        __, report = CollectionPipeline().run(source)
        assert (
            report.unresolved + report.non_us + report.no_mentions
            + report.retained
            == report.collected
        )

    def test_empty_result_raises(self):
        with pytest.raises(PipelineError):
            CollectionPipeline().run([tweet("sunset", "Wichita, KS")])

    def test_mentions_extracted_on_records(self):
        source = [tweet("heart and lung transplant", "Boston, MA", 1)]
        corpus, __ = CollectionPipeline().run(source)
        from repro.organs import Organ

        mentions = corpus.records[0].mentions
        assert mentions == {Organ.HEART: 1, Organ.LUNG: 1}

    def test_us_yield_property(self):
        source = [
            tweet("kidney donor", "Wichita, KS", 1),
            tweet("kidney donor", "London", 2),
        ]
        __, report = CollectionPipeline().run(source)
        assert report.us_yield == pytest.approx(0.5)

    def test_us_yield_counts_us_located_without_mentions(self):
        """Regression: us_yield divided `retained`/`collected`, excluding
        US-located tweets whose keyword match had no extractable organ
        mention — but the paper's 134,986/975,021 footnote counts every
        tweet identified as from a USA user."""
        from repro.nlp.matcher import OrganMatcher
        from repro.organs import Organ

        # A matcher that knows fewer aliases than the track vocabulary:
        # "kidney donor" is collected but yields no extractable mention.
        pipeline = CollectionPipeline(
            matcher=OrganMatcher(aliases={"liver": Organ.LIVER})
        )
        source = [
            tweet("liver donor", "Wichita, KS", 1),
            tweet("kidney donor", "Topeka, KS", 2),
            tweet("liver donor", "London", 3),
        ]
        __, report = pipeline.run(source)
        assert report.no_mentions == 1
        assert report.us_located == 2
        assert report.retained == 1
        assert report.us_yield == pytest.approx(2 / 3)
        assert report.retention == pytest.approx(1 / 3)

    def test_us_located_identity(self):
        source = [
            tweet("kidney donor", "Wichita, KS", 1),
            tweet("liver transplant", "London", 2),
            tweet("heart donor", "the moon", 3),
        ]
        __, report = CollectionPipeline().run(source)
        assert report.us_located == report.retained + report.no_mentions

    def test_report_renders_rows(self):
        source = [tweet("kidney donor", "Wichita, KS", 1)]
        __, report = CollectionPipeline().run(source)
        labels = [label for label, __ in report.as_rows()]
        assert "US yield" in labels
        assert "Retention" in labels
        assert "Located in a US state" in labels


class TestPipelineOnSyntheticWorld:
    def test_us_yield_matches_calibration(self, report):
        """The session fixture runs the paper2016 scenario; Table I's
        footnote implies a ~13.8% US yield."""
        assert 0.10 < report.us_yield < 0.18

    def test_no_unlocated_records(self, corpus):
        assert all(record.state is not None for record in corpus)

    def test_every_record_has_mentions(self, corpus):
        assert all(record.mentions for record in corpus)
