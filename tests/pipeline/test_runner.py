"""Tests for the composed pipeline."""

import pytest

from repro.errors import PipelineError
from repro.pipeline.runner import CollectionPipeline
from repro.twitter.models import Place, Tweet, UserProfile


def tweet(text: str, location: str = "", tweet_id: int = 0,
          user_id: int = 1, place: Place | None = None) -> Tweet:
    return Tweet(
        tweet_id=tweet_id,
        user=UserProfile(user_id=user_id, screen_name=f"u{user_id}",
                         location=location),
        text=text,
        place=place,
    )


class TestPipelineComposition:
    def test_happy_path(self):
        source = [tweet("be a kidney donor", "Wichita, KS", 1)]
        corpus, report = CollectionPipeline().run(source)
        assert len(corpus) == 1
        assert report.retained == 1
        assert corpus.records[0].state == "KS"

    def test_off_topic_dropped_at_stream(self):
        source = [
            tweet("nice sunset", "Wichita, KS", 1),
            tweet("kidney donor", "Wichita, KS", 2),
        ]
        corpus, report = CollectionPipeline().run(source)
        assert report.stream_dropped == 1
        assert report.collected == 1
        assert len(corpus) == 1

    def test_foreign_dropped_at_us_filter(self):
        source = [
            tweet("kidney donor", "London", 1),
            tweet("kidney donor", "Wichita, KS", 2),
        ]
        corpus, report = CollectionPipeline().run(source)
        assert report.non_us == 1
        assert report.retained == 1

    def test_unresolved_counted(self):
        source = [
            tweet("kidney donor", "the moon", 1),
            tweet("kidney donor", "Wichita, KS", 2),
        ]
        __, report = CollectionPipeline().run(source)
        assert report.unresolved == 1

    def test_gps_counted_separately(self):
        source = [
            tweet("kidney donor", place=Place("Topeka, KS", "US"), tweet_id=1),
            tweet("kidney donor", "Wichita, KS", 2),
        ]
        __, report = CollectionPipeline().run(source)
        assert report.located_gps == 1
        assert report.located_profile == 1

    def test_counters_are_exhaustive(self):
        """Every collected tweet lands in exactly one outcome counter."""
        source = [
            tweet("kidney donor", "Wichita, KS", 1),
            tweet("liver transplant", "London", 2),
            tweet("heart donor", "the moon", 3),
            tweet("sunset pics", "Wichita, KS", 4),
        ]
        __, report = CollectionPipeline().run(source)
        assert (
            report.unresolved + report.non_us + report.no_mentions
            + report.retained
            == report.collected
        )

    def test_empty_result_raises(self):
        with pytest.raises(PipelineError):
            CollectionPipeline().run([tweet("sunset", "Wichita, KS")])

    def test_mentions_extracted_on_records(self):
        source = [tweet("heart and lung transplant", "Boston, MA", 1)]
        corpus, __ = CollectionPipeline().run(source)
        from repro.organs import Organ

        mentions = corpus.records[0].mentions
        assert mentions == {Organ.HEART: 1, Organ.LUNG: 1}

    def test_us_yield_property(self):
        source = [
            tweet("kidney donor", "Wichita, KS", 1),
            tweet("kidney donor", "London", 2),
        ]
        __, report = CollectionPipeline().run(source)
        assert report.us_yield == pytest.approx(0.5)

    def test_report_renders_rows(self):
        source = [tweet("kidney donor", "Wichita, KS", 1)]
        __, report = CollectionPipeline().run(source)
        labels = [label for label, __ in report.as_rows()]
        assert "US yield" in labels


class TestPipelineOnSyntheticWorld:
    def test_us_yield_matches_calibration(self, report):
        """The session fixture runs the paper2016 scenario; Table I's
        footnote implies a ~13.8% US yield."""
        assert 0.10 < report.us_yield < 0.18

    def test_no_unlocated_records(self, corpus):
        assert all(record.state is not None for record in corpus)

    def test_every_record_has_mentions(self, corpus):
        assert all(record.mentions for record in corpus)
