"""Tests for the state hierarchical clustering (Fig. 6)."""

import numpy as np
import pytest

from repro.config import StateClusteringConfig
from repro.core.characterize import characterize_regions
from repro.core.state_clusters import cluster_states


@pytest.fixture(scope="module")
def clustering(midsize_corpus):
    return cluster_states(characterize_regions(midsize_corpus))


class TestStateClustering:
    def test_distance_matrix_shape(self, clustering):
        n = len(clustering.states)
        assert clustering.distance_matrix.shape == (n, n)

    def test_distance_matrix_symmetric_zero_diagonal(self, clustering):
        matrix = clustering.distance_matrix
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_leaf_order_is_permutation_of_states(self, clustering):
        assert sorted(clustering.leaf_order()) == sorted(clustering.states)

    def test_cut_covers_all_states(self, clustering):
        assignment = clustering.cut(4)
        assert set(assignment) == set(clustering.states)
        assert len(set(assignment.values())) == 4

    def test_clusters_partition(self, clustering):
        zones = clustering.clusters(5)
        flattened = [state for zone in zones for state in zone]
        assert sorted(flattened) == sorted(clustering.states)

    def test_similar_states_cluster_together(self, midsize_corpus):
        """States with the same planted boost should sit in the same flat
        cluster more often than with differently-boosted states."""
        clustering = cluster_states(characterize_regions(midsize_corpus))
        assignment = clustering.cut(8)
        liver_states = ["DE", "RI", "CO"]
        pairs_same = sum(
            assignment[a] == assignment[b]
            for i, a in enumerate(liver_states)
            for b in liver_states[i + 1:]
            if a in assignment and b in assignment
        )
        assert pairs_same >= 1

    def test_euclidean_affinity_config(self, midsize_corpus):
        characterization = characterize_regions(midsize_corpus)
        euclid = cluster_states(
            characterization,
            StateClusteringConfig(affinity="euclidean"),
        )
        bhatta = cluster_states(characterization)
        assert not np.allclose(euclid.distance_matrix, bhatta.distance_matrix)

    def test_config_recorded(self, clustering):
        assert clustering.config.affinity == "bhattacharyya"
