"""Tests for the characterization facades (Fig. 3 / Fig. 4)."""

import numpy as np
import pytest

from repro.core.characterize import characterize_organs, characterize_regions
from repro.organs import ORGANS, Organ


class TestOrganCharacterization:
    def test_all_organs_characterized_on_synthetic_corpus(self, corpus):
        characterization = characterize_organs(corpus)
        assert set(characterization.characterized_organs()) == set(ORGANS)

    def test_profile_is_ranked(self, corpus):
        characterization = characterize_organs(corpus)
        profile = characterization.profile(Organ.HEART)
        values = [value for __, value in profile]
        assert values == sorted(values, reverse=True)

    def test_focal_organ_dominates_own_profile(self, corpus):
        characterization = characterize_organs(corpus)
        for organ in characterization.characterized_organs():
            top, __ = characterization.profile(organ)[0]
            assert top is organ

    def test_top_co_organ_is_not_self(self, corpus):
        characterization = characterize_organs(corpus)
        for organ in characterization.characterized_organs():
            assert characterization.top_co_organ(organ) is not organ

    def test_reciprocity_map_covers_all_organs(self, corpus):
        characterization = characterize_organs(corpus)
        reciprocity = characterization.reciprocity()
        assert len(reciprocity) == len(characterization.characterized_organs())

    def test_co_occurrences_not_all_reciprocal(self, midsize_corpus):
        """§IV-A: 'Clearly, these co-occurrences are not reciprocal.'"""
        characterization = characterize_organs(midsize_corpus)
        assert not all(characterization.reciprocity().values())


class TestRegionCharacterization:
    def test_states_present(self, corpus):
        characterization = characterize_regions(corpus)
        assert len(characterization.states) >= 40

    def test_signatures_are_distributions(self, corpus):
        characterization = characterize_regions(corpus)
        matrix = characterization.matrix_k()
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_heart_first_in_most_states(self, midsize_corpus):
        """Fig. 4: 'most states have their first … organ as heart'."""
        characterization = characterize_regions(midsize_corpus)
        heart_first = sum(
            characterization.signature(state)[0][0] is Organ.HEART
            for state in characterization.states
        )
        assert heart_first > len(characterization.states) * 0.6

    def test_second_most_mentioned(self, midsize_corpus):
        characterization = characterize_regions(midsize_corpus)
        seconds = {
            characterization.second_most_mentioned(state)
            for state in characterization.states
        }
        # Fig. 4: states split by their second organ — kidney, liver, lung.
        assert Organ.KIDNEY in seconds

    def test_explicit_region_list(self, corpus):
        characterization = characterize_regions(corpus, regions=("KS", "MA"))
        assert characterization.states == ("KS", "MA")

    def test_signature_for_unknown_state_raises(self, corpus):
        characterization = characterize_regions(corpus, regions=("KS",))
        with pytest.raises(KeyError):
            characterization.signature("ZZ")
