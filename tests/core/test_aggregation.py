"""Tests for the aggregation K = (LᵀL)⁻¹LᵀÛ."""

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.core.aggregation import aggregate, ranked_profile
from repro.core.attention import build_attention_matrix
from repro.core.membership import by_most_cited_organ, by_region
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.errors import EmptyGroupError
from repro.geo.geocoder import GeoMatch
from repro.organs import Organ
from repro.twitter.models import Tweet, UserProfile


def record(user_id, organs, tweet_id=0, state="KS"):
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=tweet_id,
            user=UserProfile(user_id=user_id, screen_name=f"u{user_id}"),
            text="t",
            created_at=datetime(2015, 6, 1, tzinfo=timezone.utc),
        ),
        location=GeoMatch("US", state, 0.95, "test"),
        mentions=organs,
    )


@pytest.fixture()
def attention():
    corpus = TweetCorpus([
        record(1, {Organ.KIDNEY: 3, Organ.HEART: 1}, 1, "KS"),
        record(2, {Organ.KIDNEY: 1}, 2, "KS"),
        record(3, {Organ.HEART: 4}, 3, "MA"),
        record(4, {Organ.HEART: 1, Organ.LIVER: 3}, 4, "MA"),
    ])
    return build_attention_matrix(corpus)


class TestEquationThree:
    def test_k_rows_are_group_means(self, attention):
        """The literal (LᵀL)⁻¹LᵀÛ must equal per-group row means."""
        membership = by_region(attention)
        result = aggregate(attention, membership)
        for index, label in enumerate(result.group_labels):
            members = [
                row
                for row, state in enumerate(attention.states)
                if state == label
            ]
            expected = attention.normalized[members].mean(axis=0)
            np.testing.assert_allclose(result.matrix[index], expected)

    def test_k_rows_are_distributions(self, attention):
        result = aggregate(attention, by_region(attention))
        np.testing.assert_allclose(result.matrix.sum(axis=1), 1.0)
        assert np.all(result.matrix >= 0)

    def test_region_aggregation_shape(self, attention):
        result = aggregate(attention, by_region(attention))
        assert result.matrix.shape == (2, 6)
        assert result.group_labels == ("KS", "MA")
        assert result.group_sizes == (2, 2)

    def test_known_values(self, attention):
        result = aggregate(attention, by_region(attention))
        ks = result.row("KS")
        # Users 1 (0.25 heart, 0.75 kidney) and 2 (1.0 kidney).
        assert ks[Organ.KIDNEY.index] == pytest.approx(0.875)
        assert ks[Organ.HEART.index] == pytest.approx(0.125)


class TestEmptyGroups:
    def test_drop_removes_empty_organ_groups(self, attention):
        result = aggregate(attention, by_most_cited_organ(attention))
        assert "lung" not in result.group_labels
        assert all(size > 0 for size in result.group_sizes)

    def test_raise_policy(self, attention):
        with pytest.raises(EmptyGroupError):
            aggregate(attention, by_most_cited_organ(attention), on_empty="raise")

    def test_unknown_policy_rejected(self, attention):
        with pytest.raises(ValueError):
            aggregate(attention, by_most_cited_organ(attention), on_empty="ignore")

    def test_unknown_group_lookup_raises(self, attention):
        result = aggregate(attention, by_region(attention))
        with pytest.raises(KeyError):
            result.row("WY")


class TestRankedProfile:
    def test_descending(self):
        row = np.array([0.1, 0.5, 0.2, 0.1, 0.05, 0.05])
        profile = ranked_profile(row)
        values = [value for __, value in profile]
        assert values == sorted(values, reverse=True)
        assert profile[0][0] is Organ.KIDNEY

    def test_stable_on_ties(self):
        row = np.array([0.25, 0.25, 0.25, 0.25, 0.0, 0.0])
        organs = [organ for organ, __ in ranked_profile(row)]
        assert organs[:4] == [Organ.HEART, Organ.KIDNEY, Organ.LIVER, Organ.LUNG]
