"""Tests for entity-agnostic characterization."""

import numpy as np
import pytest

from repro.core.entities import (
    GenericAttention,
    aggregate_by_groups,
    aggregate_by_top_target,
    aggregate_generic,
)
from repro.core.membership import Membership
from repro.errors import CharacterizationError

TEAMS = ["lions", "tigers", "bears"]


@pytest.fixture()
def attention() -> GenericAttention:
    counts = np.array([
        [8, 1, 1],   # fan0: lions
        [0, 5, 5],   # fan1: tigers/bears tie
        [1, 1, 8],   # fan2: bears
        [9, 0, 1],   # fan3: lions
    ])
    return GenericAttention.from_counts(
        ["fan0", "fan1", "fan2", "fan3"], TEAMS, counts
    )


class TestFromCounts:
    def test_rows_normalized(self, attention):
        np.testing.assert_allclose(attention.normalized.sum(axis=1), 1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CharacterizationError):
            GenericAttention.from_counts(["a"], TEAMS, np.ones((2, 3)))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(CharacterizationError):
            GenericAttention.from_counts(
                ["a"], ["x", "x"], np.ones((1, 2))
            )

    def test_zero_row_rejected(self):
        with pytest.raises(CharacterizationError, match="fan1"):
            GenericAttention.from_counts(
                ["fan0", "fan1"], TEAMS, np.array([[1, 0, 0], [0, 0, 0]])
            )

    def test_negative_counts_rejected(self):
        with pytest.raises(CharacterizationError):
            GenericAttention.from_counts(
                ["a"], TEAMS, np.array([[1, -1, 0]])
            )

    def test_non_2d_rejected(self):
        with pytest.raises(CharacterizationError):
            GenericAttention.from_counts(["a"], TEAMS, np.ones(3))


class TestTopTarget:
    def test_clear_winners(self, attention):
        top = attention.top_target()
        assert top[0] == 0  # lions
        assert top[2] == 2  # bears

    def test_tie_resolved_deterministically(self, attention):
        first = attention.top_target()[1]
        second = attention.top_target()[1]
        assert first == second
        assert first in (1, 2)


class TestAggregation:
    def test_by_top_target_matches_group_means(self, attention):
        result = aggregate_by_top_target(attention)
        top = attention.top_target()
        for index, label in enumerate(result.group_labels):
            target_index = TEAMS.index(label)
            members = np.flatnonzero(top == target_index)
            expected = attention.normalized[members].mean(axis=0)
            np.testing.assert_allclose(result.matrix[index], expected)

    def test_profile_ranked(self, attention):
        result = aggregate_by_top_target(attention)
        profile = result.profile("lions")
        assert profile[0][0] == "lions"
        values = [value for __, value in profile]
        assert values == sorted(values, reverse=True)

    def test_unknown_group_raises(self, attention):
        result = aggregate_by_top_target(attention)
        with pytest.raises(KeyError):
            result.profile("sharks")

    def test_by_groups(self, attention):
        groups = {"fan0": "north", "fan1": "south", "fan2": "south",
                  "fan3": "north"}
        result = aggregate_by_groups(attention, groups)
        assert result.group_labels == ("north", "south")
        north = result.profile("north")
        assert north[0][0] == "lions"

    def test_by_groups_excludes_unmapped(self, attention):
        result = aggregate_by_groups(attention, {"fan0": "solo"})
        assert result.group_sizes == (1,)

    def test_by_groups_empty_rejected(self, attention):
        with pytest.raises(CharacterizationError):
            aggregate_by_groups(attention, {})

    def test_generic_misalignment_rejected(self, attention):
        membership = Membership(
            group_labels=("g",), assignments=np.zeros(2, dtype=np.int64)
        )
        with pytest.raises(CharacterizationError):
            aggregate_generic(attention, membership)

    def test_rows_are_distributions(self, attention):
        result = aggregate_by_top_target(attention)
        np.testing.assert_allclose(result.matrix.sum(axis=1), 1.0)


class TestParityWithOrganPath:
    def test_same_numbers_as_specialized_pipeline(self, corpus):
        """The generic path and the organ-specialized path agree on K."""
        from repro.core.aggregation import aggregate
        from repro.core.attention import build_attention_matrix
        from repro.core.membership import by_most_cited_organ
        from repro.organs import ORGAN_NAMES

        specialized_attention = build_attention_matrix(corpus)
        specialized = aggregate(
            specialized_attention, by_most_cited_organ(specialized_attention)
        )
        generic_attention = GenericAttention.from_counts(
            list(specialized_attention.user_ids),
            list(ORGAN_NAMES),
            specialized_attention.counts,
        )
        membership = Membership(
            group_labels=tuple(ORGAN_NAMES),
            assignments=specialized_attention.most_cited(),
        )
        generic = aggregate_generic(generic_attention, membership)
        np.testing.assert_allclose(generic.matrix, specialized.matrix)
