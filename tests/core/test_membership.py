"""Tests for membership-indicator matrices L."""

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.core.attention import build_attention_matrix
from repro.core.membership import by_most_cited_organ, by_region
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.errors import CharacterizationError
from repro.geo.geocoder import GeoMatch
from repro.organs import ORGAN_NAMES, Organ
from repro.twitter.models import Tweet, UserProfile


def record(user_id, organs, tweet_id=0, state="KS"):
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=tweet_id,
            user=UserProfile(user_id=user_id, screen_name=f"u{user_id}"),
            text="t",
            created_at=datetime(2015, 6, 1, tzinfo=timezone.utc),
        ),
        location=GeoMatch("US", state, 0.95, "test"),
        mentions=organs,
    )


@pytest.fixture()
def attention():
    corpus = TweetCorpus([
        record(1, {Organ.KIDNEY: 3}, 1, "KS"),
        record(2, {Organ.HEART: 2}, 2, "MA"),
        record(3, {Organ.HEART: 1}, 3, "KS"),
    ])
    return build_attention_matrix(corpus)


class TestOrganMembership:
    def test_group_labels_are_organs(self, attention):
        membership = by_most_cited_organ(attention)
        assert membership.group_labels == ORGAN_NAMES

    def test_assignments(self, attention):
        membership = by_most_cited_organ(attention)
        assert membership.assignments.tolist() == [
            Organ.KIDNEY.index, Organ.HEART.index, Organ.HEART.index,
        ]

    def test_group_sizes(self, attention):
        sizes = by_most_cited_organ(attention).group_sizes()
        assert sizes[Organ.HEART.index] == 2
        assert sizes[Organ.KIDNEY.index] == 1
        assert sizes.sum() == 3

    def test_indicator_one_hot(self, attention):
        indicator = by_most_cited_organ(attention).indicator_matrix()
        assert indicator.shape == (3, 6)
        np.testing.assert_allclose(indicator.sum(axis=1), 1.0)

    def test_eq1_literal_form(self, attention):
        """l_ij = 1 iff j = argmax_j Û(i, j)."""
        membership = by_most_cited_organ(attention)
        indicator = membership.indicator_matrix()
        for i in range(attention.n_users):
            j = int(np.argmax(attention.normalized[i]))
            if (attention.normalized[i] == attention.normalized[i].max()).sum() == 1:
                assert indicator[i, j] == 1.0


class TestRegionMembership:
    def test_default_regions_sorted(self, attention):
        membership = by_region(attention)
        assert membership.group_labels == ("KS", "MA")

    def test_assignments_by_state(self, attention):
        membership = by_region(attention)
        assert membership.assignments.tolist() == [0, 1, 0]

    def test_explicit_region_order(self, attention):
        membership = by_region(attention, regions=("MA", "KS", "WY"))
        assert membership.assignments.tolist() == [1, 0, 1]
        assert membership.group_sizes().tolist() == [1, 2, 0]

    def test_user_outside_region_list_excluded(self, attention):
        membership = by_region(attention, regions=("MA",))
        assert membership.assignments.tolist() == [-1, 0, -1]
        assert membership.n_assigned == 1

    def test_excluded_users_have_zero_rows(self, attention):
        membership = by_region(attention, regions=("MA",))
        indicator = membership.indicator_matrix()
        assert indicator[0].sum() == 0.0
        assert indicator[2].sum() == 0.0

    def test_empty_regions_raise(self, attention):
        with pytest.raises(CharacterizationError):
            by_region(attention, regions=())
