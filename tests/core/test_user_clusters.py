"""Tests for the K-Means user clustering (Fig. 7)."""

import numpy as np
import pytest

from repro.config import UserClusteringConfig
from repro.core.attention import build_attention_matrix
from repro.core.user_clusters import cluster_users, sweep_k
from repro.errors import ClusteringError
from repro.organs import N_ORGANS


@pytest.fixture(scope="module")
def attention(corpus):
    return build_attention_matrix(corpus)


@pytest.fixture(scope="module")
def clustering(attention):
    return cluster_users(attention, UserClusteringConfig(k=12, n_init=4, seed=0))


class TestClusterUsers:
    def test_paper_k(self, clustering):
        assert clustering.k == 12

    def test_labels_cover_users(self, attention, clustering):
        assert clustering.result.labels.shape == (attention.n_users,)

    def test_high_silhouette(self, clustering):
        """Most users are one-hot rows, so clusters are tight — the paper
        reports silhouette 0.953."""
        assert clustering.silhouette > 0.8

    def test_avg_cluster_size(self, attention, clustering):
        assert clustering.avg_cluster_size == pytest.approx(
            attention.n_users / 12
        )

    def test_cluster_profiles_ranked(self, clustering):
        profile = clustering.cluster_profile(0)
        values = [value for __, value in profile]
        assert values == sorted(values, reverse=True)

    def test_relative_sizes_sum_to_one(self, clustering):
        assert clustering.relative_sizes().sum() == pytest.approx(1.0)

    def test_single_focus_clusters_exist(self, clustering):
        """Fig. 7 identifies clusters focused on a single organ."""
        focus_counts = [
            clustering.n_focus_organs(cluster) for cluster in range(12)
        ]
        assert 1 in focus_counts

    def test_six_organ_corners_covered(self, attention, clustering):
        """With k ≥ 6, every organ should own at least one cluster whose
        center is dominated by it (the paper's rationale for k ≥ n)."""
        dominant = {
            int(np.argmax(clustering.result.centers[cluster]))
            for cluster in range(12)
        }
        assert dominant == set(range(N_ORGANS))

    def test_k_below_organ_count_rejected(self, attention):
        with pytest.raises(ClusteringError):
            cluster_users(attention, UserClusteringConfig(k=5))

    def test_bad_cluster_index_rejected(self, clustering):
        with pytest.raises(ClusteringError):
            clustering.cluster_profile(99)

    def test_deterministic(self, attention):
        config = UserClusteringConfig(k=8, n_init=2, seed=5)
        a = cluster_users(attention, config)
        b = cluster_users(attention, config)
        assert np.array_equal(a.result.labels, b.result.labels)


class TestSweepK:
    def test_sweep_fields_aligned(self, attention):
        sweep = sweep_k(attention, ks=(6, 8, 10))
        assert sweep.ks == (6, 8, 10)
        assert len(sweep.inertias) == 3
        assert len(sweep.silhouettes) == 3

    def test_inertia_decreases(self, attention):
        sweep = sweep_k(
            attention, ks=(6, 12, 18),
            config=UserClusteringConfig(n_init=4),
        )
        assert sweep.inertias[0] >= sweep.inertias[1] >= sweep.inertias[2]

    def test_best_k_by_silhouette(self, attention):
        sweep = sweep_k(attention, ks=(6, 12))
        assert sweep.best_k_by_silhouette() in (6, 12)

    def test_parallel_sweep_matches_serial(self, attention):
        ks = (6, 8, 10)
        config = UserClusteringConfig(n_init=2, seed=4)
        serial = sweep_k(attention, ks=ks, config=config, workers=1)
        parallel = sweep_k(attention, ks=ks, config=config, workers=2)
        assert serial == parallel

    def test_invalid_workers_rejected(self, attention):
        with pytest.raises(ClusteringError):
            sweep_k(attention, ks=(6,), workers=0)
