"""Unit tests for the baseline methods the paper argues against
(tweet-level characterization and winner-takes-all)."""

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.core.tweet_level import tweet_level_state_aggregation
from repro.core.wta import winner_takes_all
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.geo.geocoder import GeoMatch
from repro.organs import Organ
from repro.twitter.models import Tweet, UserProfile


def record(user_id, organs, state="KS", tweet_id=0):
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=tweet_id,
            user=UserProfile(user_id=user_id, screen_name=f"u{user_id}"),
            text="t",
            created_at=datetime(2015, 6, 1, tzinfo=timezone.utc),
        ),
        location=GeoMatch("US", state, 0.95, "test"),
        mentions=organs,
    )


class TestTweetLevelAggregation:
    def test_rows_are_distributions(self):
        corpus = TweetCorpus([
            record(1, {Organ.KIDNEY: 1}, "KS", 1),
            record(2, {Organ.HEART: 1, Organ.KIDNEY: 1}, "KS", 2),
            record(3, {Organ.HEART: 1}, "MA", 3),
        ])
        result = tweet_level_state_aggregation(corpus)
        np.testing.assert_allclose(result.matrix.sum(axis=1), 1.0)
        assert result.states == ("KS", "MA")
        assert result.tweet_counts == (2, 1)

    def test_known_values(self):
        corpus = TweetCorpus([
            record(1, {Organ.KIDNEY: 1}, "KS", 1),
            record(2, {Organ.HEART: 1, Organ.KIDNEY: 1}, "KS", 2),
        ])
        row = tweet_level_state_aggregation(corpus).row("KS")
        # Tweet 1: pure kidney; tweet 2: half heart half kidney.
        assert row[Organ.KIDNEY.index] == pytest.approx(0.75)
        assert row[Organ.HEART.index] == pytest.approx(0.25)

    def test_heavy_user_dominates_tweet_level(self):
        """The §III-B bias: one busy user outweighs many quiet ones."""
        records = [record(1, {Organ.INTESTINE: 1}, "KS", i) for i in range(30)]
        records += [
            record(100 + i, {Organ.HEART: 1}, "KS", 100 + i) for i in range(10)
        ]
        result = tweet_level_state_aggregation(TweetCorpus(records))
        assert result.row("KS")[Organ.INTESTINE.index] == pytest.approx(0.75)

    def test_unknown_state_raises(self):
        corpus = TweetCorpus([record(1, {Organ.KIDNEY: 1}, "KS", 1)])
        with pytest.raises(KeyError):
            tweet_level_state_aggregation(corpus).row("ZZ")


class TestWinnerTakesAll:
    def test_counts_users_not_tweets(self):
        records = [record(1, {Organ.KIDNEY: 1}, "KS", i) for i in range(10)]
        records += [
            record(100 + i, {Organ.HEART: 1}, "KS", 100 + i) for i in range(2)
        ]
        labels = winner_takes_all(TweetCorpus(records))
        # One kidney user vs two heart users: heart wins per user counts.
        assert labels["KS"] is Organ.HEART

    def test_one_label_per_state(self):
        corpus = TweetCorpus([
            record(1, {Organ.KIDNEY: 1}, "KS", 1),
            record(2, {Organ.HEART: 1}, "MA", 2),
        ])
        labels = winner_takes_all(corpus)
        assert set(labels) == {"KS", "MA"}

    def test_tie_breaks_to_canonical_order(self):
        corpus = TweetCorpus([
            record(1, {Organ.LIVER: 1}, "KS", 1),
            record(2, {Organ.KIDNEY: 1}, "KS", 2),
        ])
        assert winner_takes_all(corpus)["KS"] is Organ.KIDNEY

    def test_heart_dominates_synthetic_corpus(self, corpus):
        labels = winner_takes_all(corpus)
        heart_share = sum(
            organ is Organ.HEART for organ in labels.values()
        ) / len(labels)
        # At the small session-fixture scale, tiny states flip by noise;
        # heart still tops at least half the states (benches assert the
        # stronger ≥ 75% at scale 0.12).
        assert heart_share >= 0.5
