"""Tests for highlighted-organ detection via relative risk."""

from datetime import datetime, timezone

import pytest

from repro.config import RelativeRiskConfig
from repro.core.relative_risk import highlighted_organs, state_organ_risks
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.geo.geocoder import GeoMatch
from repro.organs import ORGANS, Organ
from repro.twitter.models import Tweet, UserProfile


def record(user_id, organs, state, tweet_id=0):
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=tweet_id,
            user=UserProfile(user_id=user_id, screen_name=f"u{user_id}"),
            text="t",
            created_at=datetime(2015, 6, 1, tzinfo=timezone.utc),
        ),
        location=GeoMatch("US", state, 0.95, "test"),
        mentions=organs,
    )


def synthetic_excess_corpus() -> TweetCorpus:
    """KS users all mention kidney; elsewhere kidney is rare."""
    records = []
    tweet_id = 0
    user_id = 0
    for i in range(60):  # Kansas: kidney-heavy (50 kidney, 10 heart)
        organ = Organ.KIDNEY if i < 50 else Organ.HEART
        records.append(record(user_id, {organ: 1}, "KS", tweet_id))
        user_id += 1
        tweet_id += 1
    for state in ("CA", "TX", "NY"):
        for i in range(100):
            organ = Organ.KIDNEY if i < 20 else Organ.HEART
            records.append(record(user_id, {organ: 1}, state, tweet_id))
            user_id += 1
            tweet_id += 1
    return TweetCorpus(records)


class TestStateOrganRisks:
    def test_every_state_organ_pair_present(self):
        risks = state_organ_risks(synthetic_excess_corpus())
        states = {risk.state for risk in risks}
        assert states == {"KS", "CA", "TX", "NY"}
        assert len(risks) == 4 * len(ORGANS)

    def test_kansas_kidney_rr_large(self):
        risks = state_organ_risks(synthetic_excess_corpus())
        ks_kidney = next(
            r for r in risks if r.state == "KS" and r.organ is Organ.KIDNEY
        )
        # Prevalence 50/60 inside vs 60/300 outside.
        assert ks_kidney.result.rr == pytest.approx((50 / 60) / 0.2, rel=0.01)
        assert ks_kidney.highlighted

    def test_kansas_heart_deficit_not_highlighted(self):
        risks = state_organ_risks(synthetic_excess_corpus())
        ks_heart = next(
            r for r in risks if r.state == "KS" and r.organ is Organ.HEART
        )
        assert not ks_heart.highlighted
        assert ks_heart.result.significant_deficit

    def test_population_counts(self):
        risks = state_organ_risks(synthetic_excess_corpus())
        ks = next(r for r in risks if r.state == "KS")
        assert ks.n_state_users == 60
        assert ks.n_outside_users == 300

    def test_min_users_marks_insufficient(self):
        corpus = synthetic_excess_corpus()
        config = RelativeRiskConfig(min_users=100)
        risks = state_organ_risks(corpus, config)
        ks = [r for r in risks if r.state == "KS"]
        assert all(r.insufficient_data for r in ks)
        assert not any(r.highlighted for r in ks)

    def test_single_state_corpus_reports_insufficient_data(self):
        """Regression: a single-state corpus used to vanish entirely from
        the output instead of surfacing as insufficient data."""
        import math

        corpus = TweetCorpus([
            record(1, {Organ.KIDNEY: 1}, "KS", 1),
            record(2, {Organ.HEART: 1}, "KS", 2),
        ])
        risks = state_organ_risks(corpus)
        assert len(risks) == len(ORGANS)
        assert {r.state for r in risks} == {"KS"}
        for risk in risks:
            assert risk.insufficient_data
            assert not risk.highlighted
            assert risk.n_outside_users == 0
            assert math.isnan(risk.result.rr)


class TestHighlightedOrgans:
    def test_planted_excess_recovered(self):
        highlights = highlighted_organs(synthetic_excess_corpus())
        assert highlights["KS"] == (Organ.KIDNEY,)

    def test_null_states_empty(self):
        highlights = highlighted_organs(synthetic_excess_corpus())
        # Heart is *uniform* outside KS; CA/TX/NY may pick up a small
        # complementary excess but never kidney.
        for state in ("CA", "TX", "NY"):
            assert Organ.KIDNEY not in highlights[state]

    def test_all_states_in_mapping(self):
        highlights = highlighted_organs(synthetic_excess_corpus())
        assert set(highlights) == {"KS", "CA", "TX", "NY"}

    def test_single_state_corpus_maps_to_empty_tuple(self):
        """Regression: the docstring promises every seen state maps to a
        tuple, but a single-state corpus used to drop the state."""
        corpus = TweetCorpus([
            record(1, {Organ.KIDNEY: 1}, "KS", 1),
            record(2, {Organ.HEART: 1}, "KS", 2),
        ])
        assert highlighted_organs(corpus) == {"KS": ()}

    def test_alpha_tightening_reduces_highlights(self, midsize_corpus):
        loose = highlighted_organs(
            midsize_corpus, RelativeRiskConfig(alpha=0.20)
        )
        strict = highlighted_organs(
            midsize_corpus, RelativeRiskConfig(alpha=0.001)
        )
        n_loose = sum(len(organs) for organs in loose.values())
        n_strict = sum(len(organs) for organs in strict.values())
        assert n_strict <= n_loose
