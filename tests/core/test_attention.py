"""Tests for the user attention matrix Û."""

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.core.attention import build_attention_matrix
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.errors import CharacterizationError
from repro.geo.geocoder import GeoMatch
from repro.organs import Organ
from repro.twitter.models import Tweet, UserProfile


def record(user_id, organs, tweet_id=0, state="KS"):
    return CollectedTweet(
        tweet=Tweet(
            tweet_id=tweet_id,
            user=UserProfile(user_id=user_id, screen_name=f"u{user_id}"),
            text="t",
            created_at=datetime(2015, 6, 1, tzinfo=timezone.utc),
        ),
        location=GeoMatch("US", state, 0.95, "test"),
        mentions=organs,
    )


@pytest.fixture()
def toy_attention():
    corpus = TweetCorpus([
        record(1, {Organ.KIDNEY: 3, Organ.HEART: 1}, 1),
        record(2, {Organ.LUNG: 1}, 2, state="MA"),
        record(3, {Organ.HEART: 1}, 3),
        record(3, {Organ.HEART: 1, Organ.LIVER: 2}, 4),
    ])
    return build_attention_matrix(corpus)


class TestConstruction:
    def test_shape(self, toy_attention):
        assert toy_attention.counts.shape == (3, 6)
        assert toy_attention.normalized.shape == (3, 6)

    def test_counts_aggregated_per_user(self, toy_attention):
        row = toy_attention.counts[toy_attention.user_ids.index(3)]
        assert row[Organ.HEART.index] == 2
        assert row[Organ.LIVER.index] == 2

    def test_rows_sum_to_one(self, toy_attention):
        np.testing.assert_allclose(toy_attention.normalized.sum(axis=1), 1.0)

    def test_normalization_values(self, toy_attention):
        row = toy_attention.row_for_user(1)
        assert row[Organ.KIDNEY.index] == pytest.approx(0.75)
        assert row[Organ.HEART.index] == pytest.approx(0.25)

    def test_states_aligned(self, toy_attention):
        index = toy_attention.user_ids.index(2)
        assert toy_attention.states[index] == "MA"

    def test_unknown_user_raises(self, toy_attention):
        with pytest.raises(CharacterizationError):
            toy_attention.row_for_user(99)


class TestMostCited:
    def test_clear_argmax(self, toy_attention):
        assert toy_attention.most_cited_organ(1) is Organ.KIDNEY

    def test_tie_breaking_is_deterministic(self, toy_attention):
        corpus = TweetCorpus([record(5, {Organ.HEART: 1, Organ.KIDNEY: 1})])
        attention = build_attention_matrix(corpus)
        first = attention.most_cited_organ(5)
        second = build_attention_matrix(corpus).most_cited_organ(5)
        assert first is second
        assert first in (Organ.HEART, Organ.KIDNEY)

    def test_tie_breaking_is_symmetric_across_users(self):
        """Over many tied users, neither organ should dominate: the fix
        for the low-index bias that distorted Fig. 3."""
        corpus = TweetCorpus([
            record(uid, {Organ.HEART: 1, Organ.KIDNEY: 1}, uid)
            for uid in range(400)
        ])
        attention = build_attention_matrix(corpus)
        choices = attention.most_cited()
        heart_share = (choices == Organ.HEART.index).mean()
        assert 0.4 < heart_share < 0.6

    def test_most_cited_matches_row_argmax_when_unique(self, toy_attention):
        choices = toy_attention.most_cited()
        for row_index in range(toy_attention.n_users):
            row = toy_attention.normalized[row_index]
            if (row == row.max()).sum() == 1:
                assert choices[row_index] == int(np.argmax(row))
