"""RPL004 fixture: narrow handlers, or broad handlers that re-raise."""

from typing import IO


def narrow(handle: IO[str]) -> str:
    try:
        return handle.read()
    except (ValueError, OSError):
        return ""


def observe_and_reraise(handle: IO[str], log: list[str]) -> str:
    try:
        return handle.read()
    except Exception:
        log.append("read failed")
        raise
