"""RPL004 fixture: handlers that can swallow injected faults."""

from typing import IO


def swallow_exception(handle: IO[str]) -> str:
    try:
        return handle.read()
    except Exception:  # expect: RPL004
        return ""


def swallow_bare(handle: IO[str]) -> str:
    try:
        return handle.read()
    except:  # noqa: E722  expect: RPL004
        return ""


def swallow_in_tuple(handle: IO[str]) -> str:
    try:
        return handle.read()
    except (ValueError, BaseException):  # expect: RPL004
        return ""
