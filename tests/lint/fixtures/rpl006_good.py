"""RPL006 fixture: explicit raises survive ``python -O``."""


def resolve(value: int | None) -> int:
    if value is None:
        raise ValueError("value is required")
    return value


def merge(chunks: list[list[int]]) -> list[int]:
    if not chunks:
        raise ValueError("need at least one chunk")
    merged: list[int] = []
    for chunk in chunks:
        merged.extend(chunk)
    return merged
