"""RPL005 fixture: None defaults, built fresh per call."""


def collect(item: int, into: list[int] | None = None) -> list[int]:
    result = [] if into is None else into
    result.append(item)
    return result


def label(name: str, prefix: str = "state:") -> str:
    return prefix + name
