"""RPL002 fixture: the CLI may read the clock (progress reporting).

Linted under a virtual ``src/repro/cli/`` path, so no findings.
"""

import time

started = time.time()
elapsed = time.perf_counter()
