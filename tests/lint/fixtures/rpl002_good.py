"""RPL002 fixture: time derived from inputs (simulated clock) is fine."""

from datetime import datetime, timedelta


def window_end(start: datetime) -> datetime:
    return start + timedelta(days=60)


def bucket(stamp: datetime) -> str:
    return f"{stamp:%Y-%m-%d}"
