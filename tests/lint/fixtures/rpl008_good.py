"""Reads and storage-routed writes never trip RPL008."""

from pathlib import Path

from repro.storage.atomic import atomic_write_text


def load(path: Path) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def load_binary(path: Path) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def save(path: Path, text: str) -> None:
    atomic_write_text(path, text)


def reopen(path: Path, mode: str) -> object:
    # A non-constant mode is not judged; the call site's reviewer is.
    return open(path, mode)
