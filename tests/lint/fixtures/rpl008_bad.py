"""Raw durable writes that bypass the storage layer (RPL008)."""

import io
import os
from pathlib import Path


def persist(path: Path, text: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:  # expect: RPL008
        handle.write(text)
    with open(path, mode="ab") as handle:  # expect: RPL008
        handle.write(b"tail")
    with io.open(path, "r+", encoding="utf-8") as handle:  # expect: RPL008
        handle.write(text)
    path.write_text(text, encoding="utf-8")  # expect: RPL008
    path.write_bytes(text.encode("utf-8"))  # expect: RPL008


def swap(src: Path, dst: Path) -> None:
    os.replace(src, dst)  # expect: RPL008
    os.rename(dst, src)  # expect: RPL008
