"""RPL003 fixture: unordered iteration reaching ordered sinks."""

from typing import TextIO


def join_set(values: list[str]) -> str:
    unique = set(values)
    return ", ".join(unique)  # expect: RPL003


def join_keys(mapping: dict[str, int]) -> str:
    return " ".join(mapping.keys())  # expect: RPL003


def join_comp(mapping: dict[str, int]) -> str:
    return ",".join(str(v) for v in mapping.values())  # expect: RPL003


def returned_list(values: list[int]) -> list[int]:
    return list({v for v in values})  # expect: RPL003


def returned_comp(mapping: dict[str, int]) -> list[int]:
    return [value for value in mapping.values()]  # expect: RPL003


def union_join(a: list[str], b: list[str]) -> str:
    merged = set(a) | set(b)
    return ",".join(merged)  # expect: RPL003


def write_records(handle: TextIO, records: list[str]) -> None:
    for record in set(records):  # expect: RPL003
        handle.write(record + "\n")
