"""Suppression fixture: one earned directive, one stale one."""

import numpy as np

entropy = np.random.default_rng()  # reprolint: disable=RPL001
seeded = np.random.default_rng(3)  # reprolint: disable=RPL001 (expect: RPL007)
