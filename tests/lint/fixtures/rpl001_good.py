"""RPL001 fixture: explicitly seeded RNG is the project convention."""

import random

import numpy as np
from numpy.random import default_rng

rng = np.random.default_rng(7)
spawned = default_rng(np.random.SeedSequence(3))
seeded = random.Random(13)

value = rng.normal(0.0, 1.0)
pair = seeded.sample([1, 2, 3], 2)
streams = np.random.SeedSequence(0).spawn(4)
