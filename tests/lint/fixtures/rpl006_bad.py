"""RPL006 fixture: asserts doing runtime validation."""


def resolve(value: int | None) -> int:
    assert value is not None  # expect: RPL006
    return value


def merge(chunks: list[list[int]]) -> list[int]:
    assert chunks, "need at least one chunk"  # expect: RPL006
    merged: list[int] = []
    for chunk in chunks:
        merged.extend(chunk)
    return merged
