"""RPL002 fixture: wall-clock reads in core logic."""

import datetime
import time
from datetime import datetime as dt
from time import perf_counter

started = time.time()  # expect: RPL002
tick = perf_counter()  # expect: RPL002
now = dt.now()  # expect: RPL002
stamp = datetime.datetime.utcnow()  # expect: RPL002
today = datetime.date.today()  # expect: RPL002
