"""Seeds through a SeedSequence: RPL102 negative."""

from numpy.random import SeedSequence

from app.rng import make_stream


def build(root_entropy):
    return make_stream(SeedSequence(root_entropy))
