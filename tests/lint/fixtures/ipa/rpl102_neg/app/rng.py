"""RNG factory: seed arrives as a parameter, so the file is locally clean."""

from numpy.random import default_rng


def make_stream(seed):
    return default_rng(seed)
