"""Plain-data payloads cross the pool boundary: RPL105 negative."""

from app.pool import run_supervised


def process(path, retries):
    del retries
    return len(path)


def launch(paths):
    tasks = [(path, 3) for path in paths]
    return run_supervised(process, tasks, workers=2)
