"""Package facade re-exporting the crash class under a new name."""

from pkg.core.errors import Boom as PkgBoom

__all__ = ["PkgBoom"]
