"""Catches the re-exported, aliased crash class: RPL101 through aliases.

``Crash`` is ``pkg.PkgBoom`` is ``pkg.core.errors.Boom`` — the finding
only exists if import-alias and re-export resolution both work.
"""

from pkg import PkgBoom as Crash


def sweep(fs, targets):
    found = []
    for target in targets:
        try:
            found.append(fs.scan(target))
        except Crash:
            found.append(None)
    return found
