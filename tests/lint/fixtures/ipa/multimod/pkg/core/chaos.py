"""Crash-raising scanner, importing the crash class relatively."""

from .errors import Boom


class Chaos:
    def __init__(self, fuse):
        self.fuse = fuse

    def scan(self, target):
        self.fuse -= 1
        if self.fuse == 0:
            raise Boom()
        return target
