class Boom(BaseException):
    """The real crash class, two re-export hops from its users."""
