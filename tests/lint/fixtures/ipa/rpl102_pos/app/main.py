"""Passes a literal seed into the factory: RPL102 positive.

Each file is clean on its own — the creation is seeded (RPL001 quiet)
and the literal is just an int.  Only following the call graph shows the
seed bottoming out in a hard-coded literal.
"""

from app.rng import make_stream


def build():
    return make_stream(1234)
