"""Re-raises SimCrash after cleanup: RPL101 negative."""

from app.faults import SimCrash


def copy_all(fs, paths):
    copied = []
    for path in paths:
        try:
            copied.append(fs.read(path))
        except SimCrash:
            copied.clear()
            raise
        except LookupError:
            copied.append("")
    return copied
