"""Ships an open handle across the pool boundary: RPL105 positive.

The payload element is a plain call in this file; that the call returns
an open file handle is only visible through the callee's summary.
"""

from app.handles import open_log
from app.pool import run_supervised


def process(path, sink):
    del sink
    return len(path)


def launch(paths):
    tasks = [(path, open_log(path + ".log")) for path in paths]
    return run_supervised(process, tasks, workers=2)
