"""Factory returning an open file handle (never picklable)."""


def open_log(name):
    return open(name)
