"""Supervised-pool boundary (payloads must cross a pickle boundary)."""


def run_supervised(func, tasks, *, workers=2):
    del workers
    return [func(*task) for task in tasks]
