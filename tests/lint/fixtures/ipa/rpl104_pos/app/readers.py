"""Helper whose return value derives from a telemetry read."""


def pending(metrics):
    return metrics.counter_value("tweets.pending")
