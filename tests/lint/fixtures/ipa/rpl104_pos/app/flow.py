"""Branches on a telemetry-derived value: RPL104 positive.

The condition calls a plain function — no telemetry attribute appears in
this file, so only return-taint propagation over the call graph can see
that the loop is steered by a counter.
"""

from app.readers import pending


def drain(metrics, queue):
    drained = 0
    while pending(metrics):
        queue.pop()
        drained += 1
    return drained
