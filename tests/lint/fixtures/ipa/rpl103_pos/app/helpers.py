"""Raw write through a filesystem seam: invisible to file-local RPL008."""


def dump(fs, path, text):
    with fs.open(path, "w") as handle:
        handle.write(text)
