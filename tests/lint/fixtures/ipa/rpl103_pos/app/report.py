"""Caller reaching a raw-write sink one hop away: RPL103 positive."""

from app.helpers import dump


def publish(fs, results):
    for name in sorted(results):
        dump(fs, name + ".txt", results[name])
