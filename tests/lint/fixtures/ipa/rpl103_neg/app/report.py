"""Caller routing writes through the storage barrier: RPL103 negative."""

from app.storage.writer import dump


def publish(fs, results):
    for name in sorted(results):
        dump(fs, name + ".txt", results[name])
