"""Write inside a storage package: the audited barrier, RPL103 exempt."""


def dump(fs, path, text):
    with fs.open(path, "w") as handle:
        handle.write(text)
