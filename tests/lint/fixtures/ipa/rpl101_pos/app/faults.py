"""Fault injector: a crash class and a filesystem that raises it."""


class SimCrash(BaseException):
    """Derives from BaseException (not Exception): a simulated crash."""


class ChaosFS:
    """Filesystem seam whose operations can raise SimCrash."""

    def __init__(self, budget):
        self.budget = budget

    def _tick(self):
        self.budget -= 1
        if self.budget == 0:
            raise SimCrash()

    def read(self, path):
        self._tick()
        return ""

    def replace(self, src, dst):
        self._tick()
