"""Swallows SimCrash around a crash-injected call: RPL101 positive.

The handler is narrow (names one specific class), so the file-local
broad-except rule says nothing; only the whole-program pass knows that
SimCrash is a crash class and that ``fs.read`` can raise it.
"""

from app.faults import SimCrash


def copy_all(fs, paths):
    copied = []
    for path in paths:
        try:
            copied.append(fs.read(path))
        except SimCrash:
            copied.append("")
    return copied
