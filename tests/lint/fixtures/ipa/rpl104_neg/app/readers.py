"""Helper that records telemetry but returns pipeline state."""


def pending(metrics, queue):
    metrics.increment("drain.polls")
    return len(queue)
