"""Branches on pipeline state while telemetry stays write-only."""

from app.readers import pending


def drain(metrics, queue):
    drained = 0
    while pending(metrics, queue):
        queue.pop()
        drained += 1
    return drained
