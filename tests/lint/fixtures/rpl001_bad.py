"""RPL001 fixture: every flavor of implicit/unseeded RNG."""

import random
from random import choice

import numpy as np
from numpy.random import default_rng

rng = np.random.default_rng()  # expect: RPL001
rng2 = default_rng()  # expect: RPL001
np.random.seed(42)  # expect: RPL001
sample = np.random.normal(0.0, 1.0)  # expect: RPL001
roll = random.random()  # expect: RPL001
pick = choice([1, 2, 3])  # expect: RPL001
unseeded = random.Random()  # expect: RPL001
system = random.SystemRandom()  # expect: RPL001
