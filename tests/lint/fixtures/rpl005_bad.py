"""RPL005 fixture: mutable defaults shared across calls."""


def collect(item: int, into: list[int] = []) -> list[int]:  # expect: RPL005
    into.append(item)
    return into


def tally(key: str, counts: dict[str, int] = {}) -> dict[str, int]:  # expect: RPL005
    counts[key] = counts.get(key, 0) + 1
    return counts


def dedupe(item: str, *, seen: set[str] = set()) -> bool:  # expect: RPL005
    if item in seen:
        return False
    seen.add(item)
    return True
