"""RPL003 fixture: sorted() fixes the order; returning sets is fine."""

from typing import TextIO


def join_sorted(values: list[str]) -> str:
    return ", ".join(sorted(set(values)))


def keys_sorted(mapping: dict[str, int]) -> list[str]:
    return sorted(mapping.keys())


def return_the_set(values: list[int]) -> set[int]:
    return {v for v in values}


def write_sorted(handle: TextIO, records: list[str]) -> None:
    for record in sorted(set(records)):
        handle.write(record + "\n")


def reassigned(values: list[str]) -> str:
    unique = set(values)
    ordered = sorted(unique)
    return ", ".join(ordered)


def aggregation_is_order_free(mapping: dict[str, int]) -> int:
    return sum(mapping.values())
