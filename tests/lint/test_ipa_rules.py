"""RPL101–RPL105 on the fixture programs.

Every positive fixture is also run through the *file-local* engine and
must come back empty: each interprocedural rule is demonstrated on a
violation the single-file pass cannot see, which is the reason the IPA
layer exists.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.ipa import IPA_RULE_IDS, run_ipa
from repro.lint.ipa.analyzer import UnknownIpaRuleError

FIXTURES = Path(__file__).parent / "fixtures" / "ipa"

CASES = [
    ("rpl101_pos", "RPL101"),
    ("rpl102_pos", "RPL102"),
    ("rpl103_pos", "RPL103"),
    ("rpl104_pos", "RPL104"),
    ("rpl105_pos", "RPL105"),
]


@pytest.mark.parametrize(("fixture", "rule"), CASES)
def test_positive_fixture_fires_exactly_its_rule(
    fixture: str, rule: str
) -> None:
    result = run_ipa([FIXTURES / fixture])
    fired = sorted({f.rule for f in result.findings})
    assert fired == [rule]
    assert all(f.symbol for f in result.findings)


@pytest.mark.parametrize(("fixture", "rule"), CASES)
def test_positive_fixture_is_invisible_to_file_local_pass(
    fixture: str, rule: str
) -> None:
    del rule
    assert run_lint([FIXTURES / fixture]) == []


@pytest.mark.parametrize(
    "fixture",
    ["rpl101_neg", "rpl102_neg", "rpl103_neg", "rpl104_neg", "rpl105_neg"],
)
def test_negative_fixture_is_clean(fixture: str) -> None:
    assert run_ipa([FIXTURES / fixture]).findings == []


def test_rpl101_names_the_crash_class_and_call_path() -> None:
    result = run_ipa([FIXTURES / "rpl101_pos"])
    (finding,) = result.findings
    assert finding.symbol == "app.worker.copy_all"
    assert "app.faults.SimCrash" in finding.message
    assert "app.faults.ChaosFS.read" in finding.message
    assert "app.faults.ChaosFS._tick" in finding.message


def test_rpl102_traces_literal_through_the_caller_chain() -> None:
    result = run_ipa([FIXTURES / "rpl102_pos"])
    (finding,) = result.findings
    assert finding.symbol == "app.rng.make_stream"
    assert "literal 1234" in finding.message
    assert "app.main.build" in finding.message


def test_rpl103_reports_both_seam_sink_and_reaching_caller() -> None:
    result = run_ipa([FIXTURES / "rpl103_pos"])
    symbols = sorted(f.symbol for f in result.findings)
    assert symbols == ["app.helpers.dump", "app.report.publish"]


def test_rpl103_storage_package_is_the_barrier() -> None:
    assert run_ipa([FIXTURES / "rpl103_neg"]).findings == []


def test_rpl104_blames_the_telemetry_deriving_feeder() -> None:
    result = run_ipa([FIXTURES / "rpl104_pos"])
    (finding,) = result.findings
    assert finding.symbol == "app.flow.drain"
    assert "app.readers.pending" in finding.message


def test_rpl105_names_the_unpicklable_producer() -> None:
    result = run_ipa([FIXTURES / "rpl105_pos"])
    (finding,) = result.findings
    assert finding.symbol == "app.jobs.launch"
    assert "app.handles.open_log" in finding.message
    assert "open file handle" in finding.message


def test_multimod_fires_through_alias_and_reexport() -> None:
    result = run_ipa([FIXTURES / "multimod"])
    (finding,) = result.findings
    assert finding.rule == "RPL101"
    assert finding.symbol == "pkg.use.sweep"
    assert "pkg.core.errors.Boom" in finding.message


def test_rule_subset_runs_only_requested_rules() -> None:
    # rpl101_pos violates RPL101 only; asking for RPL102 finds nothing.
    result = run_ipa([FIXTURES / "rpl101_pos"], rules=("RPL102",))
    assert result.findings == []


def test_unknown_ipa_rule_raises() -> None:
    with pytest.raises(UnknownIpaRuleError):
        run_ipa([FIXTURES / "rpl101_pos"], rules=("RPL999",))


def test_suppression_silences_an_ipa_finding(tmp_path: Path) -> None:
    import shutil

    target = tmp_path / "rpl101_pos"
    shutil.copytree(FIXTURES / "rpl101_pos", target)
    worker = target / "app" / "worker.py"
    source = worker.read_text(encoding="utf-8").replace(
        "        except SimCrash:",
        "        # reprolint: disable-next-line=RPL101\n"
        "        except SimCrash:",
    )
    worker.write_text(source, encoding="utf-8")
    assert run_ipa([target]).findings == []


def test_unused_ipa_suppression_is_reported(tmp_path: Path) -> None:
    clean = tmp_path / "mod.py"
    clean.write_text(
        "def f(x):\n"
        "    return x  # reprolint: disable=RPL103\n",
        encoding="utf-8",
    )
    result = run_ipa([tmp_path])
    assert [f.rule for f in result.findings] == ["RPL007"]
    assert "RPL103" in result.findings[0].message


def test_ipa_rule_ids_are_the_documented_five() -> None:
    assert IPA_RULE_IDS == (
        "RPL101",
        "RPL102",
        "RPL103",
        "RPL104",
        "RPL105",
    )
