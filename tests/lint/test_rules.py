"""Marker-driven fixture tests: each rule fires exactly where expected.

Every fixture under ``fixtures/`` annotates its intentionally bad lines
with ``expect: RPLxxx`` comments.  The test lints each fixture under a
virtual ``src/repro`` path (so test-code exemptions do not apply) and
requires the finding set to equal the marker set — no missing findings,
no extras, right lines.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"
_EXPECT = re.compile(r"expect:\s*(RPL\d{3})")


def _expected_findings(source: str) -> list[tuple[int, str]]:
    expected = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _EXPECT.finditer(line):
            expected.append((lineno, match.group(1)))
    return sorted(expected)


def _virtual_path(name: str) -> Path:
    """Place the fixture in the tree region its name asks for."""
    if "_cli_" in name:
        return Path("src/repro/cli") / name
    if "_bench_" in name:
        return Path("benchmarks/perf") / name
    return Path("src/repro") / name


@pytest.mark.parametrize(
    "fixture", sorted(FIXTURES.glob("*.py")), ids=lambda p: p.stem
)
def test_fixture_findings_match_markers(fixture: Path) -> None:
    source = fixture.read_text(encoding="utf-8")
    expected = _expected_findings(source)
    findings = lint_source(source, _virtual_path(fixture.name))
    actual = sorted((finding.line, finding.rule) for finding in findings)
    assert actual == expected, "\n".join(f.render() for f in findings)


def test_bad_fixtures_exist_for_every_rule() -> None:
    """Guard: each shipped rule has at least one firing fixture line."""
    covered = set()
    for fixture in FIXTURES.glob("*.py"):
        for _, rule in _expected_findings(fixture.read_text("utf-8")):
            covered.add(rule)
    assert {"RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
            "RPL006", "RPL007", "RPL008"} <= covered


def test_rng_and_assert_rules_exempt_test_code() -> None:
    source = (
        "import random\n"
        "value = random.random()\n"
        "assert value >= 0.0\n"
    )
    findings = lint_source(source, Path("tests/foo/test_mod.py"))
    assert findings == []


def test_wallclock_rule_exempts_benchmarks() -> None:
    source = "import time\nstarted = time.perf_counter()\n"
    assert lint_source(source, Path("benchmarks/perf/harness.py")) == []
    assert lint_source(source, Path("src/repro/pipeline/mod.py")) != []


def test_broad_except_exempts_test_code() -> None:
    source = (
        "def f(x):\n"
        "    try:\n"
        "        return x()\n"
        "    except Exception:\n"
        "        return None\n"
    )
    assert lint_source(source, Path("tests/test_mod.py")) == []
    assert [f.rule for f in lint_source(source, Path("src/repro/m.py"))] == [
        "RPL004"
    ]


def test_mutable_default_fires_everywhere() -> None:
    source = "def f(into=[]):\n    return into\n"
    for path in ("src/repro/m.py", "tests/test_mod.py"):
        assert [f.rule for f in lint_source(source, Path(path))] == ["RPL005"]
