"""``repro lint`` CLI: exit codes, formats, rule listing, bad input."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli.main import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "rpl006_bad.py"
GOOD = FIXTURES / "rpl006_good.py"


def test_findings_exit_nonzero_with_locations(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", str(BAD)]) == 1
    out = capsys.readouterr().out
    assert "RPL006" in out
    assert f"{BAD}:5:" in out
    assert "2 findings" in out


def test_clean_file_exits_zero(capsys: pytest.CaptureFixture[str]) -> None:
    assert main(["lint", str(GOOD)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_json_format_is_machine_readable(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", str(BAD), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [entry["rule"] for entry in payload] == ["RPL006", "RPL006"]
    assert payload[0]["line"] == 5
    assert payload[0]["path"] == str(BAD)


def test_rules_flag_restricts_the_run(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", str(BAD), "--rules", "RPL001"]) == 0
    assert main(["lint", str(BAD), "--rules", "RPL001,RPL006"]) == 1
    capsys.readouterr()


def test_list_rules_prints_catalog(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
                    "RPL006"):
        assert rule_id in out


def test_unknown_rule_is_a_usage_error(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", str(GOOD), "--rules", "RPL042"]) == 2
    assert "unknown rule" in capsys.readouterr().out


def test_missing_path_is_a_usage_error(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", "no/such/dir"]) == 2
    assert "no such path" in capsys.readouterr().out
