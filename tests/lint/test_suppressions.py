"""Inline suppression semantics: same-line scope, earned-or-reported."""

from __future__ import annotations

from pathlib import Path

from repro.lint import UNUSED_SUPPRESSION, lint_source

SRC = Path("src/repro/mod.py")


def test_suppression_silences_finding_on_its_line() -> None:
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng()  # reprolint: disable=RPL001\n"
    )
    assert lint_source(source, SRC) == []


def test_suppression_on_other_line_does_not_silence() -> None:
    source = (
        "import numpy as np\n"
        "# reprolint: disable=RPL001\n"
        "rng = np.random.default_rng()\n"
    )
    rules = sorted(f.rule for f in lint_source(source, SRC))
    # The finding survives AND the stale directive is reported.
    assert rules == ["RPL001", UNUSED_SUPPRESSION]


def test_unused_suppression_is_reported_at_its_line() -> None:
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng(3)  # reprolint: disable=RPL001\n"
    )
    findings = lint_source(source, SRC)
    assert [(f.rule, f.line) for f in findings] == [(UNUSED_SUPPRESSION, 2)]
    assert "RPL001" in findings[0].message


def test_one_directive_can_name_several_rules() -> None:
    source = (
        "import numpy as np\n"
        "def f(x=[]):\n"
        "    rng = np.random.default_rng()  # reprolint: disable=RPL001,RPL006\n"
        "    assert x  # reprolint: disable=RPL006\n"
        "    return rng\n"
    )
    rules = sorted(f.rule for f in lint_source(source, SRC))
    # RPL001 earned, line-3 RPL006 unused (assert is on line 4),
    # line-4 RPL006 earned, and the mutable default still fires.
    assert rules == ["RPL005", UNUSED_SUPPRESSION]


def test_directive_inside_string_literal_is_not_a_suppression() -> None:
    source = (
        "import numpy as np\n"
        'text = "# reprolint: disable=RPL001"\n'
        "rng = np.random.default_rng()\n"
    )
    rules = [f.rule for f in lint_source(source, SRC)]
    assert rules == ["RPL001"]


def test_decorator_line_directive_does_not_cover_the_function() -> None:
    # Regression: a directive on a decorator line is scoped to exactly
    # that line — it must not leak onto the decorated ``def`` or body.
    source = (
        "import functools\n"
        "@functools.cache  # reprolint: disable=RPL005\n"
        "def f(x=[]):\n"
        "    return x\n"
    )
    rules = sorted(f.rule for f in lint_source(source, SRC))
    assert rules == ["RPL005", UNUSED_SUPPRESSION]


def test_disable_next_line_targets_the_next_code_line() -> None:
    source = (
        "import numpy as np\n"
        "# reprolint: disable-next-line=RPL001\n"
        "rng = np.random.default_rng()\n"
    )
    assert lint_source(source, SRC) == []


def test_disable_next_line_skips_blank_and_comment_lines() -> None:
    source = (
        "import numpy as np\n"
        "# reprolint: disable-next-line=RPL001\n"
        "\n"
        "# an unrelated comment\n"
        "rng = np.random.default_rng()\n"
    )
    assert lint_source(source, SRC) == []


def test_disable_next_line_between_decorator_and_def() -> None:
    # Findings on a decorated function report at the ``def`` line, so
    # the directive goes between the decorator and the ``def``.
    source = (
        "import functools\n"
        "@functools.cache\n"
        "# reprolint: disable-next-line=RPL005\n"
        "def f(x=[]):\n"
        "    return x\n"
    )
    assert lint_source(source, SRC) == []


def test_dangling_disable_next_line_is_reported_unused() -> None:
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng(3)\n"
        "# reprolint: disable-next-line=RPL001\n"
    )
    findings = lint_source(source, SRC)
    assert [(f.rule, f.line) for f in findings] == [(UNUSED_SUPPRESSION, 3)]


def test_ipa_rule_directives_are_not_reported_by_local_pass() -> None:
    # The file-local pass can never satisfy a disable=RPL10x directive;
    # policing those belongs to the --ipa pass (unused_exempt).
    source = (
        "def f(fs, path, text):\n"
        "    with fs.open(path, 'w') as h:  # reprolint: disable=RPL103\n"
        "        h.write(text)\n"
    )
    assert lint_source(source, SRC) == []


def test_unused_only_restricts_reporting_scope() -> None:
    from repro.lint.suppress import apply_suppressions, collect_suppressions

    source = "x = 1  # reprolint: disable=RPL001,RPL103\n"
    suppressions = collect_suppressions(source)
    only_ipa = apply_suppressions(
        [], suppressions, "mod.py", unused_only=frozenset({"RPL103"})
    )
    assert [f.rule for f in only_ipa] == [UNUSED_SUPPRESSION]
    assert "RPL103" in only_ipa[0].message
