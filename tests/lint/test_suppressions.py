"""Inline suppression semantics: same-line scope, earned-or-reported."""

from __future__ import annotations

from pathlib import Path

from repro.lint import UNUSED_SUPPRESSION, lint_source

SRC = Path("src/repro/mod.py")


def test_suppression_silences_finding_on_its_line() -> None:
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng()  # reprolint: disable=RPL001\n"
    )
    assert lint_source(source, SRC) == []


def test_suppression_on_other_line_does_not_silence() -> None:
    source = (
        "import numpy as np\n"
        "# reprolint: disable=RPL001\n"
        "rng = np.random.default_rng()\n"
    )
    rules = sorted(f.rule for f in lint_source(source, SRC))
    # The finding survives AND the stale directive is reported.
    assert rules == ["RPL001", UNUSED_SUPPRESSION]


def test_unused_suppression_is_reported_at_its_line() -> None:
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng(3)  # reprolint: disable=RPL001\n"
    )
    findings = lint_source(source, SRC)
    assert [(f.rule, f.line) for f in findings] == [(UNUSED_SUPPRESSION, 2)]
    assert "RPL001" in findings[0].message


def test_one_directive_can_name_several_rules() -> None:
    source = (
        "import numpy as np\n"
        "def f(x=[]):\n"
        "    rng = np.random.default_rng()  # reprolint: disable=RPL001,RPL006\n"
        "    assert x  # reprolint: disable=RPL006\n"
        "    return rng\n"
    )
    rules = sorted(f.rule for f in lint_source(source, SRC))
    # RPL001 earned, line-3 RPL006 unused (assert is on line 4),
    # line-4 RPL006 earned, and the mutable default still fires.
    assert rules == ["RPL005", UNUSED_SUPPRESSION]


def test_directive_inside_string_literal_is_not_a_suppression() -> None:
    source = (
        "import numpy as np\n"
        'text = "# reprolint: disable=RPL001"\n'
        "rng = np.random.default_rng()\n"
    )
    rules = [f.rule for f in lint_source(source, SRC)]
    assert rules == ["RPL001"]
