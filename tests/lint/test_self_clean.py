"""The CI gate: the repo must stay clean against its own analyzer.

Any new unseeded RNG, wall-clock read, unordered-iteration hazard, broad
except, mutable default, runtime assert, or stale suppression anywhere in
``src/repro`` fails this test — which is the point: the determinism
conventions the parallel/chaos property tests rely on are enforced
deterministically, not probabilistically.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lint import iter_python_files, run_lint

PACKAGE_ROOT = Path(repro.__file__).parent


def test_analyzer_sees_the_whole_package() -> None:
    """Guard against the gate silently linting nothing."""
    files = iter_python_files([PACKAGE_ROOT])
    assert len(files) > 100
    assert any(path.name == "kmeans.py" for path in files)


def test_src_repro_is_reprolint_clean() -> None:
    findings = run_lint([PACKAGE_ROOT])
    report = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"reprolint findings in src/repro:\n{report}"


def test_src_repro_is_ipa_clean_within_the_time_budget() -> None:
    """The whole-program pass: zero unbaselined findings, bounded time.

    The committed ``lint-baseline.json`` is empty, so this asserts the
    tree is *actually* clean interprocedurally — every sanctioned raw
    write carries an inline justification instead of a baseline entry.
    The 30-second budget keeps the pass viable as a CI gate.
    """
    import time

    from repro.lint.ipa import run_ipa

    start = time.perf_counter()
    result = run_ipa([PACKAGE_ROOT])
    elapsed = time.perf_counter() - start

    report = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"--ipa findings in src/repro:\n{report}"
    assert result.stats.functions > 500, "IPA indexed suspiciously little"
    assert result.stats.call_edges > 300, "call graph suspiciously sparse"
    assert elapsed < 30.0, (
        f"whole-program pass took {elapsed:.1f}s; the CI budget is 30s"
    )


def test_committed_baseline_is_empty_and_current() -> None:
    from repro.lint.ipa import load_baseline

    baseline_path = PACKAGE_ROOT.parent.parent / "lint-baseline.json"
    assert baseline_path.exists(), "lint-baseline.json must be committed"
    baseline = load_baseline(baseline_path)
    assert baseline.entries == frozenset(), (
        "the ratchet only tightens: new findings need an inline "
        "justified suppression, not a baseline entry"
    )
