"""The CI gate: the repo must stay clean against its own analyzer.

Any new unseeded RNG, wall-clock read, unordered-iteration hazard, broad
except, mutable default, runtime assert, or stale suppression anywhere in
``src/repro`` fails this test — which is the point: the determinism
conventions the parallel/chaos property tests rely on are enforced
deterministically, not probabilistically.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lint import iter_python_files, run_lint

PACKAGE_ROOT = Path(repro.__file__).parent


def test_analyzer_sees_the_whole_package() -> None:
    """Guard against the gate silently linting nothing."""
    files = iter_python_files([PACKAGE_ROOT])
    assert len(files) > 100
    assert any(path.name == "kmeans.py" for path in files)


def test_src_repro_is_reprolint_clean() -> None:
    findings = run_lint([PACKAGE_ROOT])
    report = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"reprolint findings in src/repro:\n{report}"
