"""Engine behavior: discovery, rule selection, parse failures, ordering."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import (
    PARSE_ERROR,
    UnknownRuleError,
    iter_python_files,
    lint_source,
    run_lint,
    select_rules,
)
from repro.lint.rules import ALL_RULES, RULES_BY_ID


def test_syntax_error_is_a_finding_not_a_crash() -> None:
    findings = lint_source("def broken(:\n", Path("src/repro/mod.py"))
    assert [f.rule for f in findings] == [PARSE_ERROR]
    assert findings[0].line == 1


def test_iter_python_files_sorted_and_deduplicated(tmp_path: Path) -> None:
    (tmp_path / "pkg").mkdir()
    b = tmp_path / "pkg" / "b.py"
    a = tmp_path / "pkg" / "a.py"
    b.write_text("B = 2\n")
    a.write_text("A = 1\n")
    (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
    files = iter_python_files([tmp_path, a])
    assert files == [a, b]


def test_run_lint_aggregates_files_in_deterministic_order(
    tmp_path: Path,
) -> None:
    (tmp_path / "z.py").write_text(
        "import numpy as np\nrng = np.random.default_rng()\n"
    )
    (tmp_path / "a.py").write_text("def f(x=[]):\n    return x\n")
    findings = run_lint([tmp_path])
    assert [(Path(f.path).name, f.rule) for f in findings] == [
        ("a.py", "RPL005"),
        ("z.py", "RPL001"),
    ]


def test_select_rules_defaults_to_all() -> None:
    assert select_rules(None) == ALL_RULES


def test_select_rules_resolves_subset() -> None:
    rules = select_rules(["RPL006", "RPL001"])
    assert [rule.rule_id for rule in rules] == ["RPL006", "RPL001"]


def test_select_rules_rejects_unknown_id() -> None:
    with pytest.raises(UnknownRuleError, match="RPL042"):
        select_rules(["RPL042"])


def test_rule_subset_only_runs_requested_rules() -> None:
    source = (
        "import numpy as np\n"
        "def f(x=[]):\n"
        "    return np.random.default_rng()\n"
    )
    only_defaults = lint_source(
        source, Path("src/repro/mod.py"), rules=select_rules(["RPL005"])
    )
    assert [f.rule for f in only_defaults] == ["RPL005"]


def test_registry_ids_are_unique_and_sorted() -> None:
    ids = [rule.rule_id for rule in ALL_RULES]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)
    assert set(RULES_BY_ID) == set(ids)
