"""The lint-baseline.json ratchet: keying, staleness, versioning."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.findings import Finding
from repro.lint.ipa import (
    Baseline,
    BaselineError,
    load_baseline,
    split_baselined,
    write_baseline,
)


def _finding(rule: str = "RPL103", path: str = "src/app/x.py",
             symbol: str = "app.x.run", line: int = 10) -> Finding:
    return Finding(path=path, line=line, col=0, rule=rule,
                   message="m", symbol=symbol)


def test_missing_baseline_is_empty() -> None:
    baseline = load_baseline("no/such/baseline.json")
    assert baseline.entries == frozenset()


def test_roundtrip_write_then_load(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    count = write_baseline([_finding(), _finding(rule="RPL101")], path)
    assert count == 2
    baseline = load_baseline(path)
    assert ("RPL103", "src/app/x.py", "app.x.run") in baseline.entries
    assert ("RPL101", "src/app/x.py", "app.x.run") in baseline.entries


def test_baseline_matches_on_symbol_not_line(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    write_baseline([_finding(line=10)], path)
    baseline = load_baseline(path)
    # Same (rule, path, symbol) at a different line is grandfathered:
    # unrelated edits above the finding must not break the ratchet.
    new, grandfathered, stale = split_baselined(
        [_finding(line=99)], baseline
    )
    assert new == []
    assert len(grandfathered) == 1
    assert stale == []


def test_new_findings_are_not_grandfathered(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    write_baseline([_finding()], path)
    baseline = load_baseline(path)
    fresh = _finding(symbol="app.x.other")
    new, grandfathered, stale = split_baselined(
        [_finding(), fresh], baseline
    )
    assert new == [fresh]
    assert len(grandfathered) == 1
    assert stale == []


def test_stale_entries_are_reported_sorted(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    write_baseline(
        [_finding(symbol="app.x.b"), _finding(symbol="app.x.a")], path
    )
    baseline = load_baseline(path)
    new, grandfathered, stale = split_baselined([], baseline)
    assert new == [] and grandfathered == []
    assert stale == [
        ("RPL103", "src/app/x.py", "app.x.a"),
        ("RPL103", "src/app/x.py", "app.x.b"),
    ]


def test_version_mismatch_is_an_error(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps({"version": 999, "findings": []}), encoding="utf-8"
    )
    with pytest.raises(BaselineError, match="version"):
        load_baseline(path)


def test_malformed_baseline_is_an_error(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    path.write_text("[]", encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(path)
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(path)


def test_written_baseline_is_deterministic(tmp_path: Path) -> None:
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    findings = [_finding(symbol="app.x.b"), _finding(symbol="app.x.a")]
    write_baseline(findings, a)
    write_baseline(list(reversed(findings)), b)
    assert a.read_text(encoding="utf-8") == b.read_text(encoding="utf-8")


def test_empty_baseline_object() -> None:
    assert Baseline.empty().entries == frozenset()
