"""Whole-program loader and call graph: names, aliases, duck edges."""

from __future__ import annotations

from pathlib import Path

from repro.lint.ipa import CallGraph, Program, graph_to_dot, graph_to_json, run_ipa
from repro.lint.ipa.dataflow import compute_crash_classes
from repro.lint.ipa.program import module_name_for

FIXTURES = Path(__file__).parent / "fixtures" / "ipa"
MULTIMOD = FIXTURES / "multimod"


def test_module_names_derive_from_package_markers() -> None:
    assert module_name_for(MULTIMOD / "pkg" / "use.py") == "pkg.use"
    assert module_name_for(MULTIMOD / "pkg" / "__init__.py") == "pkg"
    assert (
        module_name_for(MULTIMOD / "pkg" / "core" / "errors.py")
        == "pkg.core.errors"
    )


def test_reexport_and_alias_canonicalize_to_one_spelling() -> None:
    program = Program.load([MULTIMOD])
    # pkg re-exports Boom as PkgBoom; use.py aliases that to Crash.
    assert program.canonicalize("pkg.PkgBoom") == "pkg.core.errors.Boom"
    use = program.modules["pkg.use"]
    assert program.resolve_local(use, "Crash") == "pkg.core.errors.Boom"


def test_relative_import_resolves_to_absolute_target() -> None:
    program = Program.load([MULTIMOD])
    chaos = program.modules["pkg.core.chaos"]
    assert chaos.imports["Boom"] == "pkg.core.errors.Boom"


def test_crash_classes_are_baseexception_not_exception() -> None:
    program = Program.load([MULTIMOD])
    graph = CallGraph(program)
    assert compute_crash_classes(graph) == frozenset(
        {"pkg.core.errors.Boom"}
    )


def test_self_calls_resolve_to_methods() -> None:
    fixture = FIXTURES / "rpl101_pos"
    result = run_ipa([fixture])
    edges = result.graph.edges()
    assert (
        "app.faults.ChaosFS.read",
        "app.faults.ChaosFS._tick",
    ) in edges


def test_duck_edge_links_seam_call_to_crash_raising_method() -> None:
    # ``fs.scan`` in pkg.use.sweep has no resolvable receiver type; the
    # duck seam links it to Chaos.scan because Chaos raises a crash class.
    result = run_ipa([MULTIMOD])
    assert (
        "pkg.use.sweep",
        "pkg.core.chaos.Chaos.scan",
    ) in result.graph.edges()


def test_graph_exports_are_deterministic_and_parseable() -> None:
    result_a = run_ipa([MULTIMOD])
    result_b = run_ipa([MULTIMOD])
    assert graph_to_json(result_a.graph) == graph_to_json(result_b.graph)
    assert graph_to_dot(result_a.graph) == graph_to_dot(result_b.graph)
    dot = graph_to_dot(result_a.graph)
    assert dot.startswith("digraph callgraph {")
    assert '"pkg.use.sweep" -> "pkg.core.chaos.Chaos.scan";' in dot

    import json

    payload = json.loads(graph_to_json(result_a.graph))
    assert payload["stats"]["functions"] == len(result_a.graph.functions)
    assert ["pkg.use.sweep", "pkg.core.chaos.Chaos.scan"] in payload["edges"]


def test_parse_failure_becomes_rpl900_finding(tmp_path: Path) -> None:
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    result = run_ipa([tmp_path])
    assert [f.rule for f in result.findings] == ["RPL900"]
    assert result.findings[0].path == str(bad)
