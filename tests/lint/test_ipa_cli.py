"""``repro lint --ipa``: exit codes, baseline ratchet, graph export."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli.main import main

FIXTURES = Path(__file__).parent / "fixtures" / "ipa"
POS = FIXTURES / "rpl101_pos"
NEG = FIXTURES / "rpl101_neg"


def test_ipa_findings_exit_nonzero(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", "--ipa", str(POS)]) == 1
    out = capsys.readouterr().out
    assert "RPL101" in out
    assert "SimCrash" in out


def test_ipa_clean_tree_exits_zero(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", "--ipa", str(NEG)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_ipa_json_format_carries_symbol(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", "--ipa", "--format", "json", str(POS)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [entry["rule"] for entry in payload] == ["RPL101"]
    assert payload[0]["symbol"] == "app.worker.copy_all"


def test_baselined_findings_do_not_fail(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    baseline = tmp_path / "baseline.json"
    assert main(
        ["lint", "--ipa", "--write-baseline",
         "--baseline", str(baseline), str(POS)]
    ) == 0
    assert "wrote 1 baseline entry" in capsys.readouterr().out
    assert main(
        ["lint", "--ipa", "--baseline", str(baseline), str(POS)]
    ) == 0
    out = capsys.readouterr().out
    assert "[baselined]" in out
    assert "0 findings (1 baselined)" in out


def test_stale_baseline_entry_is_reported(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    baseline = tmp_path / "baseline.json"
    assert main(
        ["lint", "--ipa", "--write-baseline",
         "--baseline", str(baseline), str(POS)]
    ) == 0
    capsys.readouterr()
    # The negative fixture never fires, so the entry is stale.
    assert main(
        ["lint", "--ipa", "--baseline", str(baseline), str(NEG)]
    ) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_baseline_version_mismatch_is_usage_error(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps({"version": 999, "findings": []}), encoding="utf-8"
    )
    assert main(
        ["lint", "--ipa", "--baseline", str(baseline), str(NEG)]
    ) == 2
    assert "version" in capsys.readouterr().out


def test_graph_export_dot_and_json(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", "--ipa", "--graph", "dot", str(POS)]) == 0
    dot = capsys.readouterr().out
    assert dot.startswith("digraph callgraph {")
    assert "app.worker.copy_all" in dot

    assert main(["lint", "--ipa", "--graph", "json", str(POS)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["modules"] == 3


def test_graph_without_ipa_is_usage_error(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", "--graph", "dot", str(POS)]) == 2
    assert "--graph requires --ipa" in capsys.readouterr().out


def test_write_baseline_without_ipa_is_usage_error(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", "--write-baseline", str(POS)]) == 2
    assert "--write-baseline requires --ipa" in capsys.readouterr().out


def test_rules_flag_accepts_ipa_ids_and_implies_ipa(
    capsys: pytest.CaptureFixture[str],
) -> None:
    # RPL101 fires on the positive fixture even without --ipa spelled out.
    assert main(["lint", "--rules", "RPL101", str(POS)]) == 1
    assert "RPL101" in capsys.readouterr().out
    # Restricting to a different interprocedural rule finds nothing.
    assert main(["lint", "--rules", "RPL102", str(POS)]) == 0
    capsys.readouterr()


def test_unknown_rule_error_lists_both_catalogs(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", "--rules", "RPL042", str(POS)]) == 2
    out = capsys.readouterr().out
    assert "RPL001" in out
    assert "RPL101" in out


def test_list_rules_includes_ipa_catalog(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPL101", "RPL102", "RPL103", "RPL104", "RPL105"):
        assert rule_id in out
    assert "[--ipa]" in out


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_fully_suppressed_run_exits_zero_in_both_formats(
    fmt: str, tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    # Regression: an all-findings-suppressed run must report success in
    # every output format, not just the text one.
    mod = tmp_path / "mod.py"
    mod.write_text(
        "def f(x):\n"
        "    assert x  # reprolint: disable=RPL006\n"
        "    return x\n",
        encoding="utf-8",
    )
    assert main(["lint", "--format", fmt, str(mod)]) == 0
    out = capsys.readouterr().out
    if fmt == "json":
        assert json.loads(out) == []
    else:
        assert "0 findings" in out


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_suppressed_ipa_run_exits_zero_in_both_formats(
    fmt: str, tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    import shutil

    target = tmp_path / "prog"
    shutil.copytree(POS, target)
    worker = target / "app" / "worker.py"
    source = worker.read_text(encoding="utf-8").replace(
        "        except SimCrash:",
        "        # reprolint: disable-next-line=RPL101\n"
        "        except SimCrash:",
    )
    worker.write_text(source, encoding="utf-8")
    assert main(["lint", "--ipa", "--format", fmt, str(target)]) == 0
    capsys.readouterr()
