"""Consistency tests for the bundled reference data."""

import pytest

from repro.data.paper import (
    PAPER_CLUSTER_ZONE_EXAMPLES,
    PAPER_DATASET_STATS,
    PAPER_HIGHLIGHTED_ORGANS,
    PAPER_KMEANS,
    PAPER_ORGAN_CO_ATTENTION,
    PAPER_SPEARMAN_R,
    PAPER_TWITTER_POPULARITY_ORDER,
)
from repro.data.transplants import (
    COMMON_DUAL_TRANSPLANTS,
    TRANSPLANTS_2012,
    transplant_counts_vector,
    transplant_rank,
)
from repro.organs import ORGANS, Organ


class TestTransplantData:
    def test_covers_all_organs(self):
        assert set(TRANSPLANTS_2012) == set(ORGANS)

    def test_kidney_most_transplanted(self):
        assert transplant_rank()[0] is Organ.KIDNEY

    def test_heart_third_the_paper_inversion(self):
        """Fig. 2a: heart is 1st on Twitter but 3rd in transplants."""
        assert transplant_rank()[2] is Organ.HEART
        assert PAPER_TWITTER_POPULARITY_ORDER[0] is Organ.HEART

    def test_intestine_smallest(self):
        assert transplant_rank()[-1] is Organ.INTESTINE

    def test_vector_matches_canonical_order(self):
        vector = transplant_counts_vector()
        for organ in ORGANS:
            assert vector[organ.index] == TRANSPLANTS_2012[organ]

    def test_dual_transplants_are_pairs(self):
        for pair in COMMON_DUAL_TRANSPLANTS:
            assert len(pair) == 2
            assert Organ.KIDNEY in pair  # every common dual involves kidney


class TestPaperNumbers:
    def test_table1_internally_consistent(self):
        stats = PAPER_DATASET_STATS
        assert stats["tweets_collected"] < stats["tweets_raw"]
        yield_ratio = stats["tweets_collected"] / stats["tweets_raw"]
        assert yield_ratio == pytest.approx(0.138, abs=0.002)
        per_user = stats["tweets_collected"] / stats["users"]
        assert per_user == pytest.approx(stats["avg_tweets_per_user"], abs=0.01)
        per_day = stats["tweets_collected"] / stats["days"]
        assert per_day == pytest.approx(stats["avg_tweets_per_day"], rel=0.01)

    def test_reported_spearman_matches_rank_arithmetic(self):
        """The heart inversion alone implies r = 1 − 36/210 ≈ .83, which
        the paper rounds to .84."""
        assert PAPER_SPEARMAN_R == pytest.approx(1 - 36 / 210, abs=0.015)

    def test_co_attention_map_total(self):
        assert set(PAPER_ORGAN_CO_ATTENTION) == set(ORGANS)
        for focal, top in PAPER_ORGAN_CO_ATTENTION.items():
            assert top is not focal

    def test_highlighted_states_valid(self):
        from repro.geo.gazetteer import state_by_abbrev

        for state, organs in PAPER_HIGHLIGHTED_ORGANS.items():
            state_by_abbrev(state)
            assert organs

    def test_zone_examples_valid_states(self):
        from repro.geo.gazetteer import state_by_abbrev

        for states in PAPER_CLUSTER_ZONE_EXAMPLES.values():
            for state in states:
                state_by_abbrev(state)

    def test_kmeans_reference(self):
        assert PAPER_KMEANS["k"] == 12
        assert 0 < PAPER_KMEANS["silhouette"] <= 1
