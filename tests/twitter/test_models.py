"""Tests for tweet/user/place records and their serialization."""

from datetime import datetime, timezone

import pytest

from repro.errors import SerializationError
from repro.twitter.models import Place, Tweet, UserProfile


def make_tweet(**overrides) -> Tweet:
    defaults = dict(
        tweet_id=1,
        user=UserProfile(user_id=7, screen_name="donor_mom_7", location="Wichita, KS"),
        text="be a kidney donor",
        created_at=datetime(2015, 6, 1, 12, 30, tzinfo=timezone.utc),
        place=None,
    )
    defaults.update(overrides)
    return Tweet(**defaults)


class TestRoundTrips:
    def test_tweet_roundtrip(self):
        tweet = make_tweet()
        assert Tweet.from_dict(tweet.to_dict()) == tweet

    def test_tweet_with_place_roundtrip(self):
        tweet = make_tweet(place=Place("Wichita, KS", "US"))
        restored = Tweet.from_dict(tweet.to_dict())
        assert restored.place == Place("Wichita, KS", "US")

    def test_user_roundtrip(self):
        user = UserProfile(user_id=3, screen_name="x", location="")
        assert UserProfile.from_dict(user.to_dict()) == user

    def test_place_roundtrip(self):
        place = Place("NOLA", "US")
        assert Place.from_dict(place.to_dict()) == place

    def test_timestamp_preserves_timezone(self):
        tweet = make_tweet()
        restored = Tweet.from_dict(tweet.to_dict())
        assert restored.created_at == tweet.created_at
        assert restored.created_at.tzinfo is not None


class TestMalformedInput:
    def test_missing_tweet_field(self):
        with pytest.raises(SerializationError):
            Tweet.from_dict({"tweet_id": 1})

    def test_missing_user_field(self):
        with pytest.raises(SerializationError):
            UserProfile.from_dict({"screen_name": "x"})

    def test_non_numeric_user_id(self):
        with pytest.raises(SerializationError):
            UserProfile.from_dict({"user_id": "abc", "screen_name": "x"})

    def test_missing_place_field(self):
        with pytest.raises(SerializationError):
            Place.from_dict({"full_name": "Wichita, KS"})

    def test_bad_timestamp(self):
        data = make_tweet().to_dict()
        data["created_at"] = "not-a-date"
        with pytest.raises(SerializationError):
            Tweet.from_dict(data)

    def test_location_defaults_to_empty(self):
        user = UserProfile.from_dict({"user_id": 1, "screen_name": "x"})
        assert user.location == ""


class TestImmutability:
    def test_tweet_frozen(self):
        tweet = make_tweet()
        with pytest.raises(AttributeError):
            tweet.text = "changed"

    def test_user_frozen(self):
        user = UserProfile(user_id=1, screen_name="x")
        with pytest.raises(AttributeError):
            user.location = "moved"
