"""Tests for the fault-injecting stream substrate."""

import pytest

from repro.errors import ConfigError, SerializationError
from repro.twitter.errors import (
    HTTPStreamError,
    RateLimitError,
    StreamDisconnectError,
)
from repro.twitter.faults import (
    KEEPALIVE,
    FaultPlan,
    FaultySource,
    decode_frame,
    encode_frames,
)
from repro.twitter.models import Tweet, UserProfile


def tweets(n: int) -> list[Tweet]:
    return [
        Tweet(
            tweet_id=i,
            user=UserProfile(user_id=i % 5, screen_name="u"),
            text=f"kidney donor update {i}",
        )
        for i in range(n)
    ]


def drain(source: FaultySource) -> list[str]:
    """Drive a source the way a resilient client would, keeping every
    frame it manages to read."""
    frames: list[str] = []
    while not source.exhausted:
        try:
            connection = source.connect()
        except (RateLimitError, HTTPStreamError):
            continue
        try:
            for frame in connection:
                frames.append(frame)
        except StreamDisconnectError:
            continue
    return frames


class TestFaultPlanValidation:
    @pytest.mark.parametrize("name", [
        "disconnect_rate", "rate_limit_rate", "http_error_rate",
        "stall_rate", "keepalive_rate", "garbage_rate", "truncate_rate",
    ])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, name, bad):
        with pytest.raises(ConfigError, match=name):
            FaultPlan(**{name: bad})

    def test_stall_ticks_must_be_positive(self):
        with pytest.raises(ConfigError, match="stall_ticks"):
            FaultPlan(stall_ticks=0)

    def test_negative_backfill_rejected(self):
        with pytest.raises(ConfigError, match="backfill_depth"):
            FaultPlan(backfill_depth=-1)

    def test_negative_reorder_span_rejected(self):
        with pytest.raises(ConfigError, match="reorder_span"):
            FaultPlan(reorder_span=-1)

    def test_connect_failure_cap_must_be_positive(self):
        with pytest.raises(ConfigError, match="max_connect_failures"):
            FaultPlan(max_connect_failures=0)

    def test_truncation_requires_backfill(self):
        # Torn records are only recoverable through backfill.
        with pytest.raises(ConfigError, match="backfill_depth"):
            FaultPlan(truncate_rate=0.1, backfill_depth=0)

    def test_none_plan_has_no_faults(self):
        assert not FaultPlan.none().any_faults

    def test_chaos_plan_enables_every_class(self):
        plan = FaultPlan.chaos(seed=9)
        assert plan.any_faults
        assert plan.seed == 9
        assert plan.disconnect_rate > 0
        assert plan.truncate_rate > 0

    def test_max_displacement(self):
        assert FaultPlan(backfill_depth=8, reorder_span=4).max_displacement == 11
        assert FaultPlan(backfill_depth=0, reorder_span=0).max_displacement == 0

    def test_describe_names_active_faults(self):
        text = FaultPlan(seed=3, stall_rate=0.5).describe()
        assert "seed=3" in text
        assert "stall_rate=0.5" in text
        assert "disconnect_rate" not in text


class TestPassthrough:
    def test_no_faults_delivers_exact_frame_stream(self):
        items = tweets(30)
        source = FaultySource(iter(items), FaultPlan.none())
        assert drain(source) == list(encode_frames(items))

    def test_no_faults_injects_nothing(self):
        source = FaultySource(iter(tweets(10)), FaultPlan.none())
        drain(source)
        log = source.injected.as_dict()
        assert log.pop("connections") == 1
        assert all(value == 0 for value in log.values())


class TestFaultClasses:
    def test_rejections_capped_then_forced_success(self):
        plan = FaultPlan(seed=1, rate_limit_rate=1.0, max_connect_failures=3)
        source = FaultySource(iter(tweets(3)), plan)
        for _ in range(3):
            with pytest.raises(RateLimitError):
                source.connect()
        source.connect()  # the cap forces the 4th attempt through
        assert source.injected.rate_limited == 3
        assert source.injected.connections == 1

    def test_http_error_carries_status(self):
        plan = FaultPlan(seed=1, http_error_rate=1.0)
        source = FaultySource(iter(tweets(3)), plan)
        with pytest.raises(HTTPStreamError) as excinfo:
            source.connect()
        assert excinfo.value.status == 503

    def test_rate_limit_is_420(self):
        with pytest.raises(RateLimitError) as excinfo:
            FaultySource(
                iter(tweets(1)), FaultPlan(seed=0, rate_limit_rate=1.0)
            ).connect()
        assert excinfo.value.status == 420

    def test_disconnects_recovered_by_reconnect(self):
        plan = FaultPlan(seed=5, disconnect_rate=1.0,
                         backfill_depth=2, reorder_span=2)
        source = FaultySource(iter(tweets(40)), plan)
        ids = [decode_frame(f).tweet_id for f in drain(source) if f]
        assert sorted(set(ids)) == list(range(40))
        assert source.injected.disconnects > 0
        assert source.injected.duplicates > 0

    def test_stall_burst_is_all_keepalives(self):
        plan = FaultPlan(seed=0, stall_rate=1.0, stall_ticks=5)
        source = FaultySource(iter(tweets(1)), plan)
        connection = source.connect()
        frames = [next(connection) for _ in range(5)]
        assert frames == [KEEPALIVE] * 5
        assert source.injected.stalls == 1
        assert source.injected.keepalives == 5

    def test_garbage_frames_are_undecodable_records(self):
        plan = FaultPlan(seed=2, garbage_rate=1.0)
        connection = FaultySource(iter(tweets(1)), plan).connect()
        for frame in [next(connection) for _ in range(4)]:
            with pytest.raises(SerializationError):
                decode_frame(frame)

    def test_truncated_frame_then_disconnect_then_backfill(self):
        plan = FaultPlan(seed=3, truncate_rate=1.0,
                         backfill_depth=4, reorder_span=0)
        source = FaultySource(iter(tweets(1)), plan)
        connection = source.connect()
        torn = next(connection)
        with pytest.raises(SerializationError):
            decode_frame(torn)
        with pytest.raises(StreamDisconnectError):
            next(connection)
        # The intact record comes back on the next connection's backfill.
        recovered = next(source.connect())
        assert decode_frame(recovered).tweet_id == 0
        assert source.injected.truncated_frames == 1

    def test_superseded_connection_is_dead(self):
        source = FaultySource(iter(tweets(5)), FaultPlan.none())
        old = source.connect()
        next(old)
        source.connect()
        with pytest.raises(StreamDisconnectError):
            next(old)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def run(seed: int):
            source = FaultySource(iter(tweets(120)), FaultPlan.chaos(seed))
            return drain(source), source.injected.as_dict()

        assert run(13) == run(13)

    def test_different_seed_different_schedule(self):
        first = FaultySource(iter(tweets(120)), FaultPlan.chaos(1))
        second = FaultySource(iter(tweets(120)), FaultPlan.chaos(2))
        drain(first), drain(second)
        assert first.injected.as_dict() != second.injected.as_dict()


class TestNoRecordLost:
    def test_chaos_never_loses_a_record(self):
        items = tweets(150)
        source = FaultySource(iter(items), FaultPlan.chaos(seed=11))
        recovered: set[int] = set()
        for frame in drain(source):
            if frame == KEEPALIVE:
                continue
            try:
                recovered.add(decode_frame(frame).tweet_id)
            except SerializationError:
                continue  # torn/garbage copy; intact copy must also arrive
        assert recovered >= {t.tweet_id for t in items}
