"""Tests for the filtered stream and Twitter track semantics."""

import pytest

from repro.twitter.errors import InvalidTrackError, StreamClosedError
from repro.twitter.models import Tweet, UserProfile
from repro.twitter.stream import FilteredStream, TrackFilter


def tweet(text: str, tweet_id: int = 0) -> Tweet:
    return Tweet(
        tweet_id=tweet_id,
        user=UserProfile(user_id=1, screen_name="u"),
        text=text,
    )


class TestTrackFilter:
    def test_single_term_phrase(self):
        assert TrackFilter(["kidney"]).matches("my kidney hurts")

    def test_phrase_requires_all_terms(self):
        track = TrackFilter(["kidney donor"])
        assert track.matches("kidney donor needed")
        assert not track.matches("kidney stones hurt")
        assert not track.matches("blood donor drive")

    def test_terms_match_in_any_order(self):
        assert TrackFilter(["kidney donor"]).matches("donor of a kidney")

    def test_phrase_list_is_or(self):
        track = TrackFilter(["kidney donor", "liver transplant"])
        assert track.matches("liver transplant today")
        assert track.matches("kidney donor today")
        assert not track.matches("heart donor today")

    def test_case_insensitive(self):
        assert TrackFilter(["KIDNEY Donor"]).matches("kidney DONOR")

    def test_matches_inside_hashtags(self):
        assert TrackFilter(["kidney donor"]).matches("#kidneydonor")

    def test_empty_phrase_list_rejected(self):
        with pytest.raises(InvalidTrackError):
            TrackFilter([])

    def test_blank_phrase_rejected(self):
        with pytest.raises(InvalidTrackError):
            TrackFilter(["kidney", "   "])

    def test_empty_text_no_match(self):
        assert not TrackFilter(["kidney"]).matches("")

    def test_term_glued_inside_plain_word_no_match(self):
        # "organ" inside "organized" must not count: Twitter tokenizes
        # before matching, so only hashtag bodies substring-match.
        assert not TrackFilter(["organ"]).matches("organized crime meeting")
        assert not TrackFilter(["donor"]).matches("the donorship gala")

    def test_hyphen_compound_words_split(self):
        track = TrackFilter(["kidney donor"])
        assert track.matches("heart-kidney donor needed")

    def test_apostrophe_compound_words_split(self):
        assert TrackFilter(["donor"]).matches("the donor's family")


class TestFilteredStream:
    def test_yields_only_matching(self):
        source = [tweet("kidney donor", 1), tweet("nice weather", 2),
                  tweet("organ donation", 3)]
        stream = FilteredStream(source, track=["kidney donor", "organ donation"])
        delivered = [t.tweet_id for t in stream]
        assert delivered == [1, 3]

    def test_counters(self):
        source = [tweet("kidney donor"), tweet("x"), tweet("y")]
        stream = FilteredStream(source, track=["kidney donor"])
        list(stream)
        assert stream.delivered == 1
        assert stream.dropped == 2

    def test_closed_stream_raises(self):
        stream = FilteredStream([tweet("kidney donor")], track=["kidney"])
        stream.close()
        with pytest.raises(StreamClosedError):
            next(stream)

    def test_context_manager_closes(self):
        with FilteredStream([tweet("kidney donor")], track=["kidney"]) as stream:
            next(stream)
        with pytest.raises(StreamClosedError):
            next(stream)

    def test_exhaustion(self):
        stream = FilteredStream([tweet("kidney")], track=["kidney"])
        assert len(list(stream)) == 1
        assert list(stream) == []

    def test_lazy_consumption(self):
        def generator():
            yield tweet("kidney donor", 1)
            raise AssertionError("should not be consumed eagerly")

        stream = FilteredStream(generator(), track=["kidney"])
        assert next(stream).tweet_id == 1

    def test_close_mid_iteration(self):
        source = [tweet("kidney", 1), tweet("kidney", 2), tweet("kidney", 3)]
        stream = FilteredStream(source, track=["kidney"])
        assert next(stream).tweet_id == 1
        stream.close()
        with pytest.raises(StreamClosedError):
            next(stream)

    def test_close_is_idempotent(self):
        stream = FilteredStream([tweet("kidney")], track=["kidney"])
        stream.close()
        stream.close()
        with pytest.raises(StreamClosedError):
            next(stream)

    def test_counters_frozen_after_early_termination(self):
        source = [tweet("kidney", 1), tweet("x", 2), tweet("kidney", 3)]
        stream = FilteredStream(source, track=["kidney"])
        next(stream)
        stream.close()
        assert stream.delivered == 1
        assert stream.dropped == 0

    def test_iter_returns_self(self):
        stream = FilteredStream([], track=["kidney"])
        assert iter(stream) is stream

    def test_context_manager_after_exception(self):
        with pytest.raises(ValueError):
            with FilteredStream([tweet("kidney")], track=["kidney"]) as stream:
                raise ValueError("consumer bug")
        with pytest.raises(StreamClosedError):
            next(stream)
