"""Tests for the resilient stream client: backoff, dedup, dead-letter."""

import pytest

from repro.config import ResiliencePolicy
from repro.errors import ConfigError
from repro.twitter.faults import FaultPlan, FaultySource
from repro.twitter.models import Tweet, UserProfile
from repro.twitter.resilient import (
    ResilientStream,
    ensure_compatible,
    http_backoff,
    network_backoff,
    rate_limit_backoff,
)


def tweets(n: int) -> list[Tweet]:
    return [
        Tweet(
            tweet_id=i,
            user=UserProfile(user_id=i % 5, screen_name="u"),
            text=f"kidney donor update {i}",
        )
        for i in range(n)
    ]


NO_JITTER = ResiliencePolicy(jitter=0.0)


class TestBackoffSchedules:
    """The documented Streaming API schedule, tested without wall-clock."""

    @pytest.mark.parametrize("attempt,expected", [
        (1, 0.25), (2, 0.50), (3, 0.75), (64, 16.0), (200, 16.0),
    ])
    def test_network_is_linear_capped(self, attempt, expected):
        assert network_backoff(NO_JITTER, attempt) == pytest.approx(expected)

    @pytest.mark.parametrize("attempt,expected", [
        (1, 5.0), (2, 10.0), (3, 20.0), (7, 320.0), (20, 320.0),
    ])
    def test_http_is_exponential_capped(self, attempt, expected):
        assert http_backoff(NO_JITTER, attempt) == pytest.approx(expected)

    @pytest.mark.parametrize("attempt,expected", [
        (1, 60.0), (2, 120.0), (3, 240.0), (5, 960.0), (20, 960.0),
    ])
    def test_rate_limit_starts_at_a_minute(self, attempt, expected):
        assert rate_limit_backoff(NO_JITTER, attempt) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "schedule", [network_backoff, http_backoff, rate_limit_backoff]
    )
    def test_attempt_must_be_positive(self, schedule):
        with pytest.raises(ConfigError):
            schedule(NO_JITTER, 0)

    def test_schedules_are_pure(self):
        assert network_backoff(NO_JITTER, 3) == network_backoff(NO_JITTER, 3)

    SCHEDULES_AND_CAPS = [
        (network_backoff, "network_backoff_cap"),
        (http_backoff, "http_backoff_cap"),
        (rate_limit_backoff, "rate_limit_backoff_cap"),
    ]

    @pytest.mark.parametrize("schedule,cap_field", SCHEDULES_AND_CAPS)
    def test_monotone_non_decreasing_in_attempt(self, schedule, cap_field):
        delays = [schedule(NO_JITTER, attempt) for attempt in range(1, 200)]
        assert all(a <= b for a, b in zip(delays, delays[1:]))

    @pytest.mark.parametrize("schedule,cap_field", SCHEDULES_AND_CAPS)
    def test_capped_and_cap_is_reached(self, schedule, cap_field):
        cap = getattr(NO_JITTER, cap_field)
        delays = [schedule(NO_JITTER, attempt) for attempt in range(1, 200)]
        assert all(delay <= cap for delay in delays)
        assert delays[-1] == cap  # the schedule saturates, not diverges

    @pytest.mark.parametrize("schedule,cap_field", SCHEDULES_AND_CAPS)
    def test_deterministic_for_a_fixed_policy(self, schedule, cap_field):
        policy_a = ResiliencePolicy(jitter=0.0, seed=1)
        policy_b = ResiliencePolicy(jitter=0.0, seed=1)
        assert [schedule(policy_a, n) for n in range(1, 100)] == [
            schedule(policy_b, n) for n in range(1, 100)
        ]

    @pytest.mark.parametrize("schedule,cap_field", SCHEDULES_AND_CAPS)
    def test_custom_policy_respects_its_own_cap(self, schedule, cap_field):
        policy = ResiliencePolicy(
            network_backoff_cap=2.0,
            http_backoff_cap=40.0,
            rate_limit_backoff_cap=120.0,
            jitter=0.0,
        )
        cap = getattr(policy, cap_field)
        assert schedule(policy, 500) == cap


class TestCompatibility:
    def test_default_policy_covers_chaos_plan(self):
        ensure_compatible(ResiliencePolicy(), FaultPlan.chaos())

    def test_small_reorder_window_rejected(self):
        plan = FaultPlan(backfill_depth=8, reorder_span=4)
        with pytest.raises(ConfigError, match="reorder_window"):
            ensure_compatible(ResiliencePolicy(reorder_window=5), plan)

    def test_small_dedup_window_rejected(self):
        plan = FaultPlan(backfill_depth=8, reorder_span=4)
        with pytest.raises(ConfigError, match="dedup_window"):
            ensure_compatible(
                ResiliencePolicy(dedup_window=8, reorder_window=64), plan
            )


class TestFaultFreePassthrough:
    def test_yields_source_verbatim(self):
        items = tweets(25)
        stream = ResilientStream(FaultySource(iter(items), FaultPlan.none()))
        assert list(stream) == items

    def test_report_counts_single_clean_connection(self):
        stream = ResilientStream(FaultySource(iter(tweets(10)), FaultPlan.none()))
        list(stream)
        assert stream.report.connects == 1
        assert stream.report.delivered == 10
        assert stream.report.total_retries == 0
        assert stream.report.backoff_seconds == 0.0


class TestRecovery:
    def test_dedups_backfill_duplicates(self):
        plan = FaultPlan(seed=4, disconnect_rate=0.2)
        stream = ResilientStream(FaultySource(iter(tweets(80)), plan))
        delivered = [t.tweet_id for t in stream]
        assert delivered == list(range(80))
        assert stream.report.duplicates_suppressed > 0

    def test_stall_detection_tears_down_connection(self):
        plan = FaultPlan(seed=6, stall_rate=0.05, stall_ticks=12)
        policy = ResiliencePolicy(stall_timeout_ticks=6)
        stream = ResilientStream(FaultySource(iter(tweets(120)), plan), policy)
        assert [t.tweet_id for t in stream] == list(range(120))
        assert stream.report.stalls_detected > 0

    def test_short_keepalive_runs_are_benign(self):
        plan = FaultPlan(seed=6, keepalive_rate=0.3)
        policy = ResiliencePolicy(stall_timeout_ticks=50)
        stream = ResilientStream(FaultySource(iter(tweets(60)), plan), policy)
        list(stream)
        assert stream.report.stalls_detected == 0

    def test_dead_letters_carry_reasons_not_crashes(self):
        plan = FaultPlan(seed=8, garbage_rate=0.1)
        stream = ResilientStream(FaultySource(iter(tweets(100)), plan))
        assert [t.tweet_id for t in stream] == list(range(100))
        assert stream.report.dead_lettered > 0
        assert stream.report.dead_lettered == len(stream.dead_letters)
        assert {d.reason for d in stream.dead_letters} <= {
            "invalid-json", "malformed-record"
        }

    def test_truncated_frames_dead_lettered_and_recovered(self):
        plan = FaultPlan(seed=9, truncate_rate=0.1, backfill_depth=6)
        stream = ResilientStream(FaultySource(iter(tweets(100)), plan))
        assert [t.tweet_id for t in stream] == list(range(100))
        assert any(d.reason == "invalid-json" for d in stream.dead_letters)


class TestSimulatedBackoff:
    def test_sleep_receives_every_computed_delay(self):
        plan = FaultPlan(seed=2, disconnect_rate=0.1,
                         rate_limit_rate=0.3, http_error_rate=0.3)
        delays: list[float] = []
        stream = ResilientStream(
            FaultySource(iter(tweets(120)), plan),
            ResiliencePolicy(),
            sleep=delays.append,
        )
        list(stream)
        assert delays
        assert sum(delays) == pytest.approx(stream.report.backoff_seconds)

    def test_jitter_is_deterministic_per_seed(self):
        def total(seed: int) -> float:
            plan = FaultPlan(seed=1, disconnect_rate=0.1,
                             rate_limit_rate=0.3)
            stream = ResilientStream(
                FaultySource(iter(tweets(100)), plan),
                ResiliencePolicy(seed=seed),
            )
            list(stream)
            return stream.report.backoff_seconds

        assert total(5) == total(5)

    def test_no_jitter_gives_exact_schedule(self):
        plan = FaultPlan(seed=0, rate_limit_rate=1.0, max_connect_failures=2)
        stream = ResilientStream(
            FaultySource(iter(tweets(5)), plan), NO_JITTER
        )
        list(stream)
        # Exactly two 420 rejections before the forced success: 60 + 120.
        assert stream.report.rejections_420 == 2
        assert stream.report.backoff_seconds == pytest.approx(180.0)

    def test_consecutive_counters_reset_on_success(self):
        # After a successful connect, the next HTTP failure restarts the
        # exponential schedule from its initial delay.
        plan = FaultPlan(seed=7, rate_limit_rate=0.4, max_connect_failures=1)
        stream = ResilientStream(
            FaultySource(iter(tweets(60)), plan), NO_JITTER
        )
        list(stream)
        if stream.report.rejections_420 > 1:
            # Every retry cost exactly the initial delay (cap = 1 failure).
            assert stream.report.backoff_seconds == pytest.approx(
                60.0 * stream.report.rejections_420
            )


class TestReportRendering:
    def test_as_rows_and_dict(self):
        stream = ResilientStream(FaultySource(iter(tweets(5)), FaultPlan.none()))
        list(stream)
        rows = dict(stream.report.as_rows())
        assert rows["Records delivered"] == "5"
        data = stream.report.to_dict()
        assert data["delivered"] == 5
        assert data["dead_letters"] == []

    def test_summary_lines_render_as_rows(self):
        stream = ResilientStream(FaultySource(iter(tweets(5)), FaultPlan.none()))
        list(stream)
        lines = stream.report.summary_lines()
        assert "Records delivered: 5" in lines
        assert len(lines) == len(stream.report.as_rows())

    def test_satisfies_health_protocol(self):
        from repro.health import HealthReport
        from repro.twitter.resilient import ReliabilityReport

        assert isinstance(ReliabilityReport(), HealthReport)

    def test_to_dict_round_trips_with_dead_letters(self):
        from repro.twitter.resilient import ReliabilityReport

        plan = FaultPlan(seed=8, garbage_rate=0.1, truncate_rate=0.05)
        stream = ResilientStream(FaultySource(iter(tweets(100)), plan))
        list(stream)
        assert stream.report.dead_lettered > 0
        restored = ReliabilityReport.from_dict(stream.report.to_dict())
        assert restored == stream.report

    def test_to_dict_is_the_only_serialization_surface(self):
        """Regression: the old ``as_dict`` partial form is gone — one
        round-trippable shape, counters and dead letters together."""
        from dataclasses import fields

        from repro.twitter.resilient import ReliabilityReport

        report = ReliabilityReport()
        assert not hasattr(report, "as_dict")
        data = report.to_dict()
        assert set(data) == {spec.name for spec in fields(ReliabilityReport)}
        assert ReliabilityReport.from_dict(data) == report


class TestDeadLetterReplay:
    def test_replayed_dead_letters_reconcile_with_the_report(self):
        """Every frame the source corrupted is accounted for: the sum of
        injected garbage and truncated frames equals the report's
        dead-letter count, each dead letter survives a serialization
        round trip, and replaying the *repairable* ones recovers records
        the stream itself already delivered (nothing was lost twice)."""
        import json as json_module

        from repro.twitter.models import Tweet
        from repro.twitter.resilient import DeadLetter

        plan = FaultPlan(seed=13, garbage_rate=0.08, truncate_rate=0.08)
        source = FaultySource(iter(tweets(200)), plan)
        stream = ResilientStream(source)
        delivered = {t.tweet_id for t in stream}
        report = stream.report

        assert report.dead_lettered == len(report.dead_letters)
        assert report.dead_lettered == (
            source.injected.garbage_frames + source.injected.truncated_frames
        )
        assert report.dead_lettered > 0

        # Dead letters survive persistence (the replay queue's format).
        replayed = [
            DeadLetter.from_dict(letter.to_dict())
            for letter in report.dead_letters
        ]
        assert replayed == report.dead_letters

        # Truncated frames are prefixes of real payloads; the source
        # re-sent those tweets on reconnect (backfill), so every id a
        # repaired payload would contribute was already delivered —
        # replay reconciles, it must not discover new records.
        from repro.errors import SerializationError

        for letter in replayed:
            try:
                data = json_module.loads(letter.payload)
            except json_module.JSONDecodeError:
                assert letter.reason == "invalid-json"
                continue
            try:
                tweet = Tweet.from_dict(data)
            except SerializationError:
                assert letter.reason == "malformed-record"
                continue
            assert tweet.tweet_id in delivered


class TestDeadLetterPersistence:
    def letters(self):
        from repro.twitter.resilient import DeadLetter

        return [
            DeadLetter(payload="{torn", reason="invalid-json", sequence=3),
            DeadLetter(payload='{"ok": true}', reason="malformed-record",
                       sequence=9),
        ]

    def test_round_trip_with_sidecar(self, tmp_path):
        from repro.storage.manifest import verify_file
        from repro.twitter.resilient import (
            read_dead_letters_jsonl,
            write_dead_letters_jsonl,
        )

        path = tmp_path / "dead.jsonl"
        assert write_dead_letters_jsonl(self.letters(), path) == 2
        assert list(read_dead_letters_jsonl(path)) == self.letters()
        assert verify_file(path).ok

    def test_crash_mid_write_preserves_old_queue(self, tmp_path):
        from repro.faults.storage import SimulatedCrash, StorageFaultPlan
        from repro.storage.fs import FaultyFS
        from repro.twitter.resilient import write_dead_letters_jsonl

        path = tmp_path / "dead.jsonl"
        write_dead_letters_jsonl(self.letters(), path)
        old = path.read_bytes()
        fs = FaultyFS(StorageFaultPlan(crash_at=2))
        with pytest.raises(SimulatedCrash):
            write_dead_letters_jsonl(self.letters() * 10, path, fs=fs)
        assert path.read_bytes() == old

    def test_malformed_line_reports_position(self, tmp_path):
        from repro.errors import SerializationError
        from repro.twitter.resilient import (
            read_dead_letters_jsonl,
            write_dead_letters_jsonl,
        )

        path = tmp_path / "dead.jsonl"
        write_dead_letters_jsonl(self.letters(), path, manifest=False)
        with open(path, "a") as handle:
            handle.write('{"payload": "x"}\n')  # missing fields
        with pytest.raises(SerializationError, match=":3"):
            list(read_dead_letters_jsonl(path))
