"""Shared fixtures: one small synthetic world + pipeline run per session.

The world is deliberately small (fast) but large enough that every state
receives users and the planted structure is statistically visible to the
integration tests that need it (which use the larger ``midsize_*``
fixtures).
"""

from __future__ import annotations

import pytest

from repro.config import CollectionConfig
from repro.pipeline.runner import CollectionPipeline
from repro.report.experiments import ExperimentSuite
from repro.synth.scenarios import paper2016_scenario
from repro.synth.world import SyntheticWorld


@pytest.fixture(scope="session")
def small_world() -> SyntheticWorld:
    """~5k users; enough for most statistics, runs in under a second."""
    return SyntheticWorld(paper2016_scenario(scale=0.01, seed=3))


@pytest.fixture(scope="session")
def small_run(small_world):
    pipeline = CollectionPipeline(config=CollectionConfig())
    return pipeline.run(small_world.firehose())


@pytest.fixture(scope="session")
def corpus(small_run):
    return small_run[0]


@pytest.fixture(scope="session")
def report(small_run):
    return small_run[1]


@pytest.fixture(scope="session")
def suite(corpus, report) -> ExperimentSuite:
    return ExperimentSuite(corpus, report)


@pytest.fixture(scope="session")
def midsize_world() -> SyntheticWorld:
    """~63k users (≈9k located US); used by ground-truth recovery tests
    that need statistical power in mid-size states."""
    return SyntheticWorld(paper2016_scenario(scale=0.12, seed=7))


@pytest.fixture(scope="session")
def midsize_run(midsize_world):
    return CollectionPipeline().run(midsize_world.firehose())


@pytest.fixture(scope="session")
def midsize_corpus(midsize_run):
    return midsize_run[0]


@pytest.fixture(scope="session")
def midsize_suite(midsize_corpus, midsize_run) -> ExperimentSuite:
    return ExperimentSuite(midsize_corpus, midsize_run[1])
