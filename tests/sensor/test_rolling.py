"""Tests for the rolling awareness sensor."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.config import RelativeRiskConfig
from repro.errors import ConfigError
from repro.organs import Organ
from repro.sensor.rolling import RollingAwarenessSensor
from repro.twitter.models import Tweet, UserProfile


def tweet(text: str, location: str, minute: int, user_id: int = 1,
          tweet_id: int = 0) -> Tweet:
    return Tweet(
        tweet_id=tweet_id,
        user=UserProfile(user_id=user_id, screen_name=f"u{user_id}",
                         location=location),
        text=text,
        created_at=datetime(2015, 6, 1, 12, tzinfo=timezone.utc)
        + timedelta(minutes=minute),
    )


@pytest.fixture()
def sensor() -> RollingAwarenessSensor:
    return RollingAwarenessSensor(
        window=timedelta(hours=1),
        relative_risk=RelativeRiskConfig(min_users=2),
    )


class TestObserve:
    def test_on_topic_us_tweet_retained(self, sensor):
        assert sensor.observe(tweet("kidney donor", "Wichita, KS", 0))
        assert sensor.window_size == 1

    def test_off_topic_rejected(self, sensor):
        assert not sensor.observe(tweet("nice sunset", "Wichita, KS", 0))
        assert sensor.window_size == 0

    def test_foreign_rejected(self, sensor):
        assert not sensor.observe(tweet("kidney donor", "London", 0))

    def test_unresolvable_rejected(self, sensor):
        assert not sensor.observe(tweet("kidney donor", "the moon", 0))

    def test_counters(self, sensor):
        sensor.observe(tweet("kidney donor", "Wichita, KS", 0))
        sensor.observe(tweet("sunset", "Wichita, KS", 1))
        assert sensor.seen == 2
        assert sensor.retained == 1


class TestEviction:
    def test_old_tweets_leave_window(self, sensor):
        sensor.observe(tweet("kidney donor", "Wichita, KS", 0, tweet_id=1))
        sensor.observe(tweet("liver donor", "Boston, MA", 30, tweet_id=2))
        assert sensor.window_size == 2
        # 90 minutes later, the first tweet (minute 0) is out of the
        # one-hour window.
        sensor.observe(tweet("heart donor", "Austin, TX", 90, tweet_id=3))
        assert sensor.window_size == 2

    def test_snapshot_reflects_window_only(self, sensor):
        sensor.observe(tweet("kidney donor", "Wichita, KS", 0, user_id=1))
        sensor.observe(tweet("heart donor", "Austin, TX", 120, user_id=2))
        snapshot = sensor.snapshot()
        assert snapshot is not None
        assert snapshot.n_tweets == 1
        assert snapshot.users_by_organ[Organ.HEART] == 1
        assert snapshot.users_by_organ[Organ.KIDNEY] == 0


class TestOutOfOrderArrivals:
    """Regression: late arrivals behind newer tweets must still expire.

    Before the frontier fix, ``_evict`` only scanned the buffer head, so
    an out-of-order old tweet appended *behind* a newer one was never
    evicted — it haunted every later snapshot.
    """

    def test_stale_arrival_rejected_and_counted(self, sensor):
        sensor.observe(tweet("kidney donor", "Wichita, KS", 120, tweet_id=1))
        # Arrives late and already outside the 1h window behind minute 120.
        assert not sensor.observe(
            tweet("liver donor", "Boston, MA", 0, tweet_id=2)
        )
        assert sensor.stale_dropped == 1
        assert sensor.window_size == 1

    def test_late_in_window_arrival_admitted(self, sensor):
        sensor.observe(tweet("kidney donor", "Wichita, KS", 60, tweet_id=1))
        # Out of order but still inside the window: must be admitted.
        assert sensor.observe(
            tweet("liver donor", "Boston, MA", 30, tweet_id=2)
        )
        assert sensor.stale_dropped == 0
        assert sensor.window_size == 2

    def test_late_arrival_eventually_evicted(self, sensor):
        sensor.observe(tweet("kidney donor", "Wichita, KS", 60, tweet_id=1))
        sensor.observe(tweet("liver donor", "Boston, MA", 30, tweet_id=2))
        # Advance the frontier past the late arrival's expiry (minute 30
        # + 60-minute window = expired once the frontier passes 90) but
        # not past the minute-60 tweet's.
        sensor.observe(tweet("heart donor", "Austin, TX", 100, tweet_id=3))
        assert sensor.window_size == 2
        snapshot = sensor.snapshot()
        assert snapshot.users_by_organ[Organ.LIVER] == 0

    def test_out_of_order_replay_matches_in_order_replay(self):
        """The window must converge to the same content either way."""
        stream = [
            tweet("kidney donor", "Wichita, KS", minute, user_id=minute,
                  tweet_id=minute)
            for minute in range(10)
        ]
        shuffled = [stream[i] for i in (3, 0, 1, 5, 2, 4, 7, 6, 9, 8)]
        in_order = RollingAwarenessSensor(window=timedelta(hours=1))
        replayed = RollingAwarenessSensor(window=timedelta(hours=1))
        for item in stream:
            in_order.observe(item)
        for item in shuffled:
            replayed.observe(item)
        a, b = in_order.snapshot(), replayed.snapshot()
        assert a.n_tweets == b.n_tweets
        assert a.n_users == b.n_users
        assert a.users_by_organ == b.users_by_organ
        assert a.window_start == b.window_start
        assert a.window_end == b.window_end


class TestSnapshot:
    def test_empty_sensor_returns_none(self, sensor):
        assert sensor.snapshot() is None

    def test_snapshot_counts(self, sensor):
        sensor.observe(tweet("kidney donor", "Wichita, KS", 0, user_id=1, tweet_id=1))
        sensor.observe(tweet("kidney transplant", "Topeka, KS", 5, user_id=1, tweet_id=2))
        sensor.observe(tweet("heart donor", "Boston, MA", 6, user_id=2, tweet_id=3))
        snapshot = sensor.snapshot()
        assert snapshot.n_tweets == 3
        assert snapshot.n_users == 2
        assert snapshot.users_by_organ[Organ.KIDNEY] == 1

    def test_detects_emerging_excess(self):
        """A kidney burst in Kansas against a heart baseline elsewhere."""
        sensor = RollingAwarenessSensor(
            window=timedelta(hours=6),
            relative_risk=RelativeRiskConfig(min_users=5),
        )
        tweet_id = 0
        for user in range(30):
            sensor.observe(tweet(
                "heart donor awareness", "Austin, TX", user, 100 + user,
                tweet_id := tweet_id + 1,
            ))
            sensor.observe(tweet(
                "heart transplant news", "Boston, MA", user, 200 + user,
                tweet_id := tweet_id + 1,
            ))
        for user in range(5):  # baseline kidney chatter outside Kansas
            sensor.observe(tweet(
                "kidney donor registry", "Austin, TX", 35 + user,
                400 + user, tweet_id := tweet_id + 1,
            ))
        for user in range(15):
            sensor.observe(tweet(
                "kidney donor drive today", "Wichita, KS", 40 + user,
                300 + user, tweet_id := tweet_id + 1,
            ))
        snapshot = sensor.snapshot()
        assert "KS" in snapshot.emerging_states()
        assert Organ.KIDNEY in snapshot.highlights["KS"]


class TestRun:
    def test_periodic_emission(self, sensor):
        stream = [
            tweet("kidney donor", "Wichita, KS", i, user_id=i, tweet_id=i)
            for i in range(10)
        ]
        snapshots = list(sensor.run(stream, emit_every=3))
        # 3 full batches of 3 plus a final snapshot.
        assert len(snapshots) == 4
        assert snapshots[-1].n_tweets >= 1

    def test_invalid_emit_every(self, sensor):
        with pytest.raises(ConfigError):
            list(sensor.run([], emit_every=0))

    def test_run_on_synthetic_world(self, small_world):
        sensor = RollingAwarenessSensor(window=timedelta(days=60))
        snapshots = list(sensor.run(small_world.firehose(), emit_every=400))
        assert snapshots
        final = snapshots[-1]
        assert final.n_users > 50
        assert final.users_by_organ[Organ.HEART] > final.users_by_organ[
            Organ.INTESTINE
        ]


class TestValidation:
    def test_non_positive_window_rejected(self):
        with pytest.raises(ConfigError):
            RollingAwarenessSensor(window=timedelta(0))
