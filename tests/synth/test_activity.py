"""Tests for the tweet activity model."""

import numpy as np
import pytest

from repro.synth.activity import (
    expected_tweets_per_user,
    sample_timestamps_days,
    sample_tweet_counts,
)
from repro.synth.config import ActivityConfig


class TestTweetCounts:
    def test_all_users_tweet_at_least_once(self):
        counts = sample_tweet_counts(
            5000, ActivityConfig(), np.random.default_rng(0)
        )
        assert counts.min() >= 1

    def test_tail_capped(self):
        config = ActivityConfig(max_tweets_per_user=50)
        counts = sample_tweet_counts(20000, config, np.random.default_rng(1))
        assert counts.max() <= 50

    def test_mean_calibrated_to_paper(self):
        """Table I reports 1.88 tweets/user; the default Zipf exponent is
        calibrated to land near it."""
        counts = sample_tweet_counts(
            200_000, ActivityConfig(), np.random.default_rng(2)
        )
        assert counts.mean() == pytest.approx(1.88, abs=0.08)

    def test_heavy_tail_exists(self):
        counts = sample_tweet_counts(
            100_000, ActivityConfig(), np.random.default_rng(3)
        )
        # The paper motivates user-level modelling with "a few
        # heavily-active users": the tail must be far above the mean.
        assert counts.max() > 50 * counts.mean()

    def test_majority_single_tweet(self):
        counts = sample_tweet_counts(
            50_000, ActivityConfig(), np.random.default_rng(4)
        )
        assert (counts == 1).mean() > 0.75

    def test_analytic_mean_close_to_empirical(self):
        config = ActivityConfig()
        analytic = expected_tweets_per_user(config)
        counts = sample_tweet_counts(300_000, config, np.random.default_rng(5))
        assert counts.mean() == pytest.approx(analytic, rel=0.1)


class TestTimestamps:
    def test_within_window(self):
        config = ActivityConfig(days=385)
        offsets = sample_timestamps_days(1000, config, np.random.default_rng(0))
        assert offsets.min() >= 0
        assert offsets.max() < 385

    def test_sorted(self):
        offsets = sample_timestamps_days(
            500, ActivityConfig(), np.random.default_rng(1)
        )
        assert np.all(np.diff(offsets) >= 0)

    def test_covers_whole_window(self):
        offsets = sample_timestamps_days(
            5000, ActivityConfig(days=100), np.random.default_rng(2)
        )
        assert offsets.min() < 5
        assert offsets.max() > 95
