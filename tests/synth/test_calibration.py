"""Tests for the Table-I calibration checker."""


from repro.synth.calibration import (
    CalibrationCheck,
    CalibrationReport,
    check_calibration,
)


class TestCalibrationCheck:
    def test_within_tolerance_passes(self):
        check = CalibrationCheck("x", target=1.0, measured=1.05, tolerance=0.1)
        assert check.ok

    def test_outside_tolerance_fails(self):
        check = CalibrationCheck("x", target=1.0, measured=1.2, tolerance=0.1)
        assert not check.ok

    def test_boundary_inclusive(self):
        check = CalibrationCheck("x", target=1.0, measured=1.5, tolerance=0.5)
        assert check.ok

    def test_render_flags(self):
        good = CalibrationCheck("x", 1.0, 1.0, 0.1)
        bad = CalibrationCheck("y", 1.0, 9.0, 0.1)
        assert "ok" in good.render()
        assert "FAIL" in bad.render()


class TestCalibrationReport:
    def test_all_ok(self):
        report = CalibrationReport(checks=(
            CalibrationCheck("a", 1.0, 1.0, 0.1),
        ))
        assert report.ok
        assert "CALIBRATED" in report.render()

    def test_any_failure(self):
        report = CalibrationReport(checks=(
            CalibrationCheck("a", 1.0, 1.0, 0.1),
            CalibrationCheck("b", 1.0, 5.0, 0.1),
        ))
        assert not report.ok
        assert "OUT OF CALIBRATION" in report.render()


class TestCheckCalibration:
    def test_paper_scenario_is_calibrated(self, corpus, report):
        result = check_calibration(corpus, report)
        failing = [c.name for c in result.checks if not c.ok]
        assert result.ok, failing

    def test_checks_cover_table1_ratios(self, corpus, report):
        result = check_calibration(corpus, report)
        names = {check.name for check in result.checks}
        assert names == {
            "us_yield", "avg_tweets_per_user", "organs_per_tweet",
            "organs_per_user", "collection_days",
        }
