"""Tests for the ground-truth attention model."""

import numpy as np
import pytest

from repro.organs import N_ORGANS, Organ
from repro.synth.attention import (
    CO_ATTENTION,
    Archetype,
    AttentionModel,
    UserAttention,
)
from repro.synth.config import AttentionConfig


@pytest.fixture()
def model() -> AttentionModel:
    return AttentionModel(AttentionConfig(), np.random.default_rng(0))


class TestCoAttentionMatrix:
    def test_rows_sum_to_one(self):
        assert np.allclose(CO_ATTENTION.sum(axis=1), 1.0)

    def test_diagonal_zero(self):
        assert np.allclose(np.diag(CO_ATTENTION), 0.0)

    def test_plants_paper_fig3_claims(self):
        """Kidney is top co-organ for heart/liver/pancreas; heart for the
        kidney/lung/intestine — the §IV-A reading of Fig. 3."""
        kidney, heart = Organ.KIDNEY.index, Organ.HEART.index
        for focal in (Organ.HEART, Organ.LIVER, Organ.PANCREAS):
            assert np.argmax(CO_ATTENTION[focal.index]) == kidney
        for focal in (Organ.KIDNEY, Organ.LUNG, Organ.INTESTINE):
            assert np.argmax(CO_ATTENTION[focal.index]) == heart

    def test_non_reciprocal(self):
        # heart→kidney but kidney→heart is reciprocal; liver→kidney while
        # kidney→heart is not: at least one pair must be non-reciprocal.
        liver = Organ.LIVER.index
        assert np.argmax(CO_ATTENTION[liver]) == Organ.KIDNEY.index
        assert np.argmax(CO_ATTENTION[Organ.KIDNEY.index]) != liver


class TestSampling:
    def test_distribution_sums_to_one(self, model):
        for __ in range(100):
            sample = model.sample("KS")
            assert sample.distribution.shape == (N_ORGANS,)
            assert sample.distribution.sum() == pytest.approx(1.0)
            assert np.all(sample.distribution >= 0)

    def test_focal_is_argmax_for_focused_archetypes(self, model):
        for __ in range(200):
            sample = model.sample("CA")
            if sample.archetype is not Archetype.BROAD:
                assert int(np.argmax(sample.distribution)) == sample.focal.index

    def test_dual_users_have_secondary(self, model):
        samples = [model.sample("TX") for __ in range(500)]
        duals = [s for s in samples if s.archetype is Archetype.DUAL_FOCUS]
        assert duals, "expected some dual-focus users in 500 samples"
        for dual in duals:
            assert dual.secondary is not None
            assert dual.secondary is not dual.focal

    def test_archetype_mix_roughly_matches_config(self):
        config = AttentionConfig(archetype_probs=(0.5, 0.3, 0.2))
        model = AttentionModel(config, np.random.default_rng(1))
        samples = [model.sample(None) for __ in range(3000)]
        fractions = {
            archetype: sum(s.archetype is archetype for s in samples) / 3000
            for archetype in Archetype
        }
        assert fractions[Archetype.SINGLE_FOCUS] == pytest.approx(0.5, abs=0.05)
        assert fractions[Archetype.DUAL_FOCUS] == pytest.approx(0.3, abs=0.05)
        assert fractions[Archetype.BROAD] == pytest.approx(0.2, abs=0.05)


class TestStatePriors:
    def test_boost_shifts_focal_distribution(self):
        kidney = Organ.KIDNEY.index
        config = AttentionConfig(state_boosts={"KS": {kidney: 2.0}})
        model = AttentionModel(config, np.random.default_rng(2))
        assert model.focal_prior("KS")[kidney] > model.focal_prior("TX")[kidney]

    def test_prior_normalized(self):
        config = AttentionConfig(state_boosts={"KS": {1: 3.0}})
        model = AttentionModel(config, np.random.default_rng(0))
        assert model.focal_prior("KS").sum() == pytest.approx(1.0)

    def test_none_state_uses_national_prior(self):
        model = AttentionModel(AttentionConfig(), np.random.default_rng(0))
        assert np.allclose(
            model.focal_prior(None), AttentionConfig().national_prior
        )

    def test_boosted_state_produces_more_kidney_users(self):
        kidney = Organ.KIDNEY
        config = AttentionConfig(state_boosts={"KS": {kidney.index: 3.0}})
        model = AttentionModel(config, np.random.default_rng(3))
        ks = sum(model.sample("KS").focal is kidney for __ in range(800)) / 800
        tx = sum(model.sample("TX").focal is kidney for __ in range(800)) / 800
        assert ks > tx * 1.5


class TestUserAttentionRecord:
    def test_fields(self, model):
        sample = model.sample("WA")
        assert isinstance(sample, UserAttention)
        assert isinstance(sample.focal, Organ)
