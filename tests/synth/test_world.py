"""Tests for the synthetic world and its firehose."""

import pytest

from repro.nlp.keywords import matches_query_set
from repro.synth.config import (
    ActivityConfig,
    AttentionConfig,
    PopulationConfig,
    SynthConfig,
    TextConfig,
)
from repro.synth.world import COLLECTION_START, SyntheticWorld


@pytest.fixture(scope="module")
def world() -> SyntheticWorld:
    config = SynthConfig(
        population=PopulationConfig(n_users=800, us_fraction=0.5),
        seed=21,
    )
    return SyntheticWorld(config)


@pytest.fixture(scope="module")
def tweets(world):
    return list(world.firehose())


class TestWorldConstruction:
    def test_ground_truth_aligned(self, world):
        truth = world.ground_truth
        assert len(truth.seeds) == len(truth.attentions) == world.n_users
        assert truth.tweet_counts.shape == (world.n_users,)

    def test_deterministic_per_seed(self):
        config = SynthConfig(population=PopulationConfig(n_users=120), seed=5)
        first = [t.text for t in SyntheticWorld(config).firehose()]
        second = [t.text for t in SyntheticWorld(config).firehose()]
        assert first == second

    def test_different_seeds_differ(self):
        base = SynthConfig(population=PopulationConfig(n_users=120), seed=1)
        other = SynthConfig(population=PopulationConfig(n_users=120), seed=2)
        assert [t.text for t in SyntheticWorld(base).firehose()] != [
            t.text for t in SyntheticWorld(other).firehose()
        ]


class TestFirehose:
    def test_tweet_count_includes_off_topic(self, world, tweets):
        on_topic = world.n_on_topic_tweets
        rate = world.config.text.off_topic_rate
        expected_off = round(on_topic * rate / (1 - rate))
        assert len(tweets) == on_topic + expected_off

    def test_timestamps_sorted_and_in_window(self, world, tweets):
        times = [t.created_at for t in tweets]
        assert times == sorted(times)
        assert times[0] >= COLLECTION_START
        assert (times[-1] - COLLECTION_START).days < world.config.activity.days

    def test_off_topic_fraction_fails_filter(self, tweets):
        failing = sum(not matches_query_set(t.text) for t in tweets)
        assert failing / len(tweets) == pytest.approx(0.15, abs=0.03)

    def test_tweet_ids_unique(self, tweets):
        ids = [t.tweet_id for t in tweets]
        assert len(set(ids)) == len(ids)

    def test_authors_are_known_users(self, world, tweets):
        assert all(0 <= t.user.user_id < world.n_users for t in tweets)

    def test_geotag_rate_near_config(self, world, tweets):
        tagged = sum(t.place is not None for t in tweets)
        assert tagged / len(tweets) == pytest.approx(
            world.config.text.geotag_rate, abs=0.01
        )

    def test_profile_location_carried_on_tweets(self, world, tweets):
        seeds = world.ground_truth.seeds
        for t in tweets[:200]:
            assert t.user.location == seeds[t.user.user_id].location


class TestGroundTruthAccessors:
    def test_us_user_ids(self, world):
        truth = world.ground_truth
        us_ids = truth.us_user_ids()
        assert all(truth.seeds[uid].is_us for uid in us_ids)
        assert len(us_ids) == 400  # us_fraction 0.5 of 800

    def test_state_of(self, world):
        truth = world.ground_truth
        for uid in truth.us_user_ids()[:20]:
            assert truth.state_of(uid) is not None

    def test_planted_boosts_keyed_by_organ(self):
        config = SynthConfig(
            population=PopulationConfig(n_users=60),
            attention=AttentionConfig(state_boosts={"KS": {1: 2.0}}),
        )
        world = SyntheticWorld(config)
        boosts = world.ground_truth.planted_boosts()
        from repro.organs import Organ

        assert boosts == {"KS": {Organ.KIDNEY: 2.0}}


class TestCalibration:
    def test_organs_per_tweet_near_paper(self, world, tweets):
        """Table I: 1.03 distinct organs per (on-topic) tweet."""
        from repro.nlp.matcher import OrganMatcher

        matcher = OrganMatcher()
        counts = [
            len(matcher.distinct_organs(t.text))
            for t in tweets
            if matches_query_set(t.text)
        ]
        mean = sum(counts) / len(counts)
        assert mean == pytest.approx(1.03, abs=0.03)
