"""Tests for tweet text generation."""

import numpy as np
import pytest

from repro.nlp.keywords import matches_query_set
from repro.nlp.matcher import OrganMatcher
from repro.organs import ORGANS, Organ
from repro.synth.text import OFF_TOPIC_TEMPLATES, TweetTextGenerator


@pytest.fixture()
def generator() -> TweetTextGenerator:
    return TweetTextGenerator(np.random.default_rng(0))


class TestOnTopic:
    def test_single_organ_passes_filter_and_matches(self, generator):
        matcher = OrganMatcher()
        for organ in ORGANS:
            for __ in range(30):
                text = generator.on_topic((organ,))
                assert matches_query_set(text), text
                assert matcher.distinct_organs(text) == {organ}, text

    def test_dual_organ_mentions_exactly_both(self, generator):
        matcher = OrganMatcher()
        for __ in range(50):
            text = generator.on_topic((Organ.HEART, Organ.KIDNEY))
            assert matcher.distinct_organs(text) == {Organ.HEART, Organ.KIDNEY}

    def test_triple_organ(self, generator):
        matcher = OrganMatcher()
        text = generator.on_topic((Organ.LIVER, Organ.LUNG, Organ.PANCREAS))
        assert matcher.distinct_organs(text) == {
            Organ.LIVER, Organ.LUNG, Organ.PANCREAS,
        }

    def test_alias_rate_zero_uses_canonical_names(self):
        generator = TweetTextGenerator(np.random.default_rng(1), alias_rate=0.0)
        for __ in range(20):
            text = generator.on_topic((Organ.KIDNEY,))
            assert "kidney" in text.lower()

    def test_alias_rate_one_varies_surface_forms(self):
        generator = TweetTextGenerator(np.random.default_rng(2), alias_rate=1.0)
        surfaces = {generator.on_topic((Organ.LUNG,)) for __ in range(100)}
        joined = " ".join(surfaces).lower()
        assert "lungs" in joined or "pulmonary" in joined


class TestRetweets:
    def test_retweet_rate_zero_never_prefixes(self):
        generator = TweetTextGenerator(np.random.default_rng(3))
        for __ in range(50):
            assert not generator.on_topic((Organ.HEART,)).startswith("RT @")

    def test_retweet_rate_one_always_prefixes(self):
        generator = TweetTextGenerator(
            np.random.default_rng(4), retweet_rate=1.0,
            handles=("donor_mom",),
        )
        text = generator.on_topic((Organ.KIDNEY,))
        assert text.startswith("RT @donor_mom: ")

    def test_retweets_preserve_mentions_and_filter(self):
        generator = TweetTextGenerator(
            np.random.default_rng(5), retweet_rate=1.0,
        )
        matcher = OrganMatcher()
        for organ in ORGANS:
            text = generator.on_topic((organ,))
            assert matches_query_set(text), text
            assert matcher.distinct_organs(text) == {organ}, text

    def test_fallback_handles_used_when_pool_empty(self):
        generator = TweetTextGenerator(
            np.random.default_rng(6), retweet_rate=1.0, handles=(),
        )
        assert generator.on_topic((Organ.LUNG,)).startswith("RT @")


class TestOffTopic:
    def test_off_topic_always_fails_filter(self, generator):
        for __ in range(100):
            assert not matches_query_set(generator.off_topic())

    def test_every_template_fails_filter(self):
        for template in OFF_TOPIC_TEMPLATES:
            assert not matches_query_set(template), template
