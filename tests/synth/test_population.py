"""Tests for the synthetic population generator."""

import numpy as np
import pytest

from repro.geo.gazetteer import ALL_REGION_CODES, CensusRegion, STATES
from repro.synth.config import PopulationConfig
from repro.synth.population import generate_population, state_weights


@pytest.fixture(scope="module")
def population():
    config = PopulationConfig(n_users=4000, us_fraction=0.25)
    return generate_population(config, np.random.default_rng(11)), config


class TestPopulationComposition:
    def test_total_count(self, population):
        seeds, config = population
        assert len(seeds) == config.n_users

    def test_us_fraction_exact(self, population):
        seeds, config = population
        n_us = sum(seed.is_us for seed in seeds)
        assert n_us == round(config.n_users * config.us_fraction)

    def test_user_ids_unique_and_dense(self, population):
        seeds, __ = population
        assert sorted(seed.user_id for seed in seeds) == list(range(len(seeds)))

    def test_us_users_have_states(self, population):
        seeds, __ = population
        valid = set(ALL_REGION_CODES)
        for seed in seeds:
            if seed.is_us:
                assert seed.state in valid
            else:
                assert seed.state is None

    def test_foreign_users_have_locations(self, population):
        seeds, __ = population
        for seed in seeds:
            if not seed.is_us:
                assert seed.location

    def test_screen_names_nonempty(self, population):
        seeds, __ = population
        assert all(seed.screen_name for seed in seeds)

    def test_junk_rate_approximate(self):
        config = PopulationConfig(
            n_users=8000, us_fraction=1.0, junk_location_rate=0.3
        )
        seeds = generate_population(config, np.random.default_rng(5))
        from repro.geo.geocoder import Geocoder

        geocoder = Geocoder()
        unresolved = sum(
            1 for seed in seeds if not geocoder.geocode(seed.location).resolved
        )
        assert 0.25 < unresolved / len(seeds) < 0.36

    def test_deterministic_per_seed(self):
        config = PopulationConfig(n_users=300)
        first = generate_population(config, np.random.default_rng(1))
        second = generate_population(config, np.random.default_rng(1))
        assert first == second


class TestStateWeights:
    def test_weights_sum_to_one(self):
        assert state_weights(0.8).sum() == pytest.approx(1.0)

    def test_midwest_bias_reduces_midwest_share(self):
        unbiased = state_weights(1.0)
        biased = state_weights(0.5)
        midwest = [
            i for i, state in enumerate(STATES)
            if state.region is CensusRegion.MIDWEST
        ]
        assert biased[midwest].sum() < unbiased[midwest].sum()

    def test_population_proportionality(self):
        weights = state_weights(1.0)
        ca = next(i for i, s in enumerate(STATES) if s.abbrev == "CA")
        wy = next(i for i, s in enumerate(STATES) if s.abbrev == "WY")
        assert weights[ca] > 30 * weights[wy]
