"""Tests for the named scenarios."""

import pytest

from repro.organs import Organ
from repro.synth.scenarios import (
    PAPER_STATE_BOOSTS,
    null_uniform_scenario,
    paper2016_scenario,
)


class TestPaper2016Scenario:
    def test_scale_controls_user_count(self):
        small = paper2016_scenario(scale=0.01)
        large = paper2016_scenario(scale=0.02)
        assert large.population.n_users == pytest.approx(
            2 * small.population.n_users, rel=0.02
        )

    def test_full_scale_matches_paper_volume(self):
        """At scale 1.0 the located US user count approximates Table I's
        71,947: generated US users × location-resolution rate."""
        config = paper2016_scenario(scale=1.0)
        n_us = config.population.n_users * config.population.us_fraction
        located = n_us * (1 - config.population.junk_location_rate) * 0.97
        assert located == pytest.approx(71_947, rel=0.05)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            paper2016_scenario(scale=0.0)
        with pytest.raises(ValueError):
            paper2016_scenario(scale=-1)

    def test_minimum_population_floor(self):
        assert paper2016_scenario(scale=1e-9).population.n_users >= 50

    def test_seed_propagates(self):
        assert paper2016_scenario(seed=99).seed == 99


class TestPlantedBoosts:
    def test_paper_named_anomalies_present(self):
        kidney, lung, liver = (
            Organ.KIDNEY.index, Organ.LUNG.index, Organ.LIVER.index,
        )
        assert PAPER_STATE_BOOSTS["KS"][kidney] > 1.5
        assert PAPER_STATE_BOOSTS["LA"][kidney] > 1.5
        assert PAPER_STATE_BOOSTS["MA"][kidney] > 1
        assert PAPER_STATE_BOOSTS["MA"][lung] > 1.5
        for state in ("DE", "RI", "CO"):
            assert PAPER_STATE_BOOSTS[state][liver] > 1.5
        for state in ("OR", "GA", "VA"):
            assert PAPER_STATE_BOOSTS[state][lung] > 1.5

    def test_kansas_is_only_midwest_kidney_boost(self):
        """Reproduces the Cao et al. cross-check the paper highlights."""
        from repro.geo.gazetteer import CensusRegion, state_by_abbrev

        kidney = Organ.KIDNEY.index
        midwest_kidney_excess = [
            state
            for state, boosts in PAPER_STATE_BOOSTS.items()
            if boosts.get(kidney, 1.0) > 1.0
            and state_by_abbrev(state).region is CensusRegion.MIDWEST
        ]
        assert midwest_kidney_excess == ["KS"]

    def test_other_midwest_states_damped_not_boosted(self):
        """The Cao et al. geography: the rest of the Midwest leans away
        from kidney conversation."""
        from repro.geo.gazetteer import CensusRegion, state_by_abbrev

        kidney = Organ.KIDNEY.index
        for state, boosts in PAPER_STATE_BOOSTS.items():
            if (
                state != "KS"
                and state_by_abbrev(state).region is CensusRegion.MIDWEST
                and kidney in boosts
            ):
                assert boosts[kidney] < 1.0, state

    def test_all_boost_states_valid(self):
        from repro.geo.gazetteer import state_by_abbrev

        for state in PAPER_STATE_BOOSTS:
            state_by_abbrev(state)  # raises if unknown


class TestNullScenario:
    def test_uniform_prior(self):
        config = null_uniform_scenario()
        assert all(
            p == pytest.approx(1 / 6) for p in config.attention.national_prior
        )

    def test_no_boosts(self):
        assert null_uniform_scenario().attention.state_boosts == {}
