"""Tests for the SVG builder and chart renderers."""

import xml.dom.minidom

import pytest

from repro.viz.charts import (
    bar_chart_svg,
    dendrogram_svg,
    heatmap_svg,
    tile_grid_map_svg,
)
from repro.viz.svg import ORGAN_COLORS, SvgCanvas, sequential_color


def assert_valid_svg(document: str) -> None:
    xml.dom.minidom.parseString(document)
    assert document.startswith("<svg")


class TestSvgCanvas:
    def test_render_is_valid_xml(self):
        canvas = SvgCanvas(100, 50)
        canvas.rect(1, 2, 3, 4).line(0, 0, 10, 10).text(5, 5, "hi")
        assert_valid_svg(canvas.render())

    def test_text_is_escaped(self):
        canvas = SvgCanvas(100, 50)
        canvas.text(0, 0, "<b>&\"'")
        assert_valid_svg(canvas.render())
        assert "<b>" not in canvas.render().split("\n", 2)[2]

    def test_tooltip_title_element(self):
        canvas = SvgCanvas(100, 50)
        canvas.rect(0, 0, 10, 10, tooltip="KS: kidney")
        assert "<title>KS: kidney</title>" in canvas.render()

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 10)

    def test_negative_rect_size_clamped(self):
        canvas = SvgCanvas(10, 10)
        canvas.rect(0, 0, -5, 3)
        assert_valid_svg(canvas.render())


class TestSequentialColor:
    def test_endpoints(self):
        assert sequential_color(0.0) == "#ffffff"
        assert sequential_color(1.0) != "#ffffff"

    def test_clamped(self):
        assert sequential_color(-1.0) == sequential_color(0.0)
        assert sequential_color(2.0) == sequential_color(1.0)

    def test_six_organ_colors(self):
        assert len(ORGAN_COLORS) == 6
        assert len(set(ORGAN_COLORS)) == 6


class TestBarChart:
    def test_valid_document(self):
        assert_valid_svg(
            bar_chart_svg(["a", "b"], [3.0, 1.0], title="t")
        )

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart_svg(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart_svg(["a"], [-1.0])

    def test_zero_values_ok(self):
        assert_valid_svg(bar_chart_svg(["a", "b"], [0.0, 0.0]))


class TestHeatmap:
    def test_valid_document(self):
        assert_valid_svg(
            heatmap_svg(["A", "B"], [[0.0, 1.0], [1.0, 0.0]])
        )

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            heatmap_svg(["A", "B"], [[0.0, 1.0]])

    def test_constant_matrix(self):
        assert_valid_svg(heatmap_svg(["A", "B"], [[1.0, 1.0], [1.0, 1.0]]))


class TestTileGridMap:
    def test_valid_document_with_all_states(self):
        document = tile_grid_map_svg({"KS": "#ff0000"}, title="map")
        assert_valid_svg(document)
        assert ">KS<" in document
        assert ">CA<" in document

    def test_uncolored_states_gray(self):
        document = tile_grid_map_svg({})
        assert "#e8e8e8" in document


class TestDendrogram:
    def test_valid_document(self):
        assert_valid_svg(
            dendrogram_svg(["A", "B", "C"], [(0, 1, 0.2), (3, 2, 0.9)])
        )

    def test_merge_count_validated(self):
        with pytest.raises(ValueError):
            dendrogram_svg(["A", "B", "C"], [(0, 1, 0.2)])

    def test_single_leaf(self):
        assert_valid_svg(dendrogram_svg(["A"], []))


class TestTileGridLayout:
    def test_partition_valid(self):
        from repro.viz.tilegrid import validate_tile_grid

        validate_tile_grid()

    def test_rough_geography(self):
        from repro.viz.tilegrid import tile_of

        # West of / east of sanity.
        assert tile_of("CA")[1] < tile_of("NY")[1]
        assert tile_of("WA")[0] < tile_of("TX")[0]
        assert tile_of("ME")[0] == 0

    def test_unknown_state(self):
        from repro.errors import GeoError
        from repro.viz.tilegrid import tile_of

        with pytest.raises(GeoError):
            tile_of("ZZ")


class TestArtifactExport:
    def test_export_all(self, suite, tmp_path):
        from repro.viz.artifacts import export_all_svg

        paths = export_all_svg(suite, tmp_path / "svg")
        names = {path.stem for path in paths}
        assert "fig2" in names
        assert "fig5" in names
        assert "fig6_heatmap" in names
        assert "fig6_dendrogram" in names
        assert "fig7" in names
        assert any(name.startswith("fig3_") for name in names)
        for path in paths:
            assert_valid_svg(path.read_text())
