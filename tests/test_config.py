"""Tests for configuration validation."""

import pytest

from repro.config import (
    AnalysisConfig,
    CollectionConfig,
    RelativeRiskConfig,
    ResiliencePolicy,
    StateClusteringConfig,
    UserClusteringConfig,
)
from repro.errors import ConfigError


class TestCollectionConfig:
    def test_defaults_valid(self):
        config = CollectionConfig()
        assert config.prefer_geotag
        assert 0.0 <= config.min_confidence <= 1.0

    def test_empty_context_rejected(self):
        with pytest.raises(ConfigError, match="context_terms"):
            CollectionConfig(context_terms=())

    def test_empty_subject_rejected(self):
        with pytest.raises(ConfigError, match="subject_terms"):
            CollectionConfig(subject_terms=())

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_bad_confidence_rejected(self, bad):
        with pytest.raises(ConfigError, match="min_confidence"):
            CollectionConfig(min_confidence=bad)

    def test_frozen(self):
        config = CollectionConfig()
        with pytest.raises(AttributeError):
            config.min_confidence = 0.9


class TestResiliencePolicy:
    def test_defaults_follow_twitter_guidance(self):
        policy = ResiliencePolicy()
        assert policy.network_backoff_step == 0.25
        assert policy.network_backoff_cap == 16.0
        assert policy.http_backoff_initial == 5.0
        assert policy.http_backoff_cap == 320.0
        assert policy.rate_limit_backoff_initial == 60.0

    @pytest.mark.parametrize("field", [
        "network_backoff_step", "network_backoff_cap",
        "http_backoff_initial", "http_backoff_cap",
        "rate_limit_backoff_initial", "rate_limit_backoff_cap",
    ])
    def test_delays_must_be_positive(self, field):
        with pytest.raises(ConfigError, match=field):
            ResiliencePolicy(**{field: 0.0})

    def test_backoff_factor_must_grow(self):
        with pytest.raises(ConfigError, match="backoff_factor"):
            ResiliencePolicy(backoff_factor=0.5)

    @pytest.mark.parametrize("bad", [-0.1, 1.0])
    def test_jitter_must_be_a_fraction(self, bad):
        with pytest.raises(ConfigError, match="jitter"):
            ResiliencePolicy(jitter=bad)

    def test_stall_timeout_must_be_positive(self):
        with pytest.raises(ConfigError, match="stall_timeout_ticks"):
            ResiliencePolicy(stall_timeout_ticks=0)

    def test_dedup_window_must_be_positive(self):
        with pytest.raises(ConfigError, match="dedup_window"):
            ResiliencePolicy(dedup_window=0)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_reorder_window_must_be_positive(self, bad):
        """A zero-size reorder buffer silently disables order restoration
        — reject it at construction, like every other degenerate size."""
        with pytest.raises(ConfigError, match="reorder_window"):
            ResiliencePolicy(reorder_window=bad)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"network_backoff_step": -0.25},
            {"network_backoff_cap": -16.0},
            {"http_backoff_initial": -5.0},
            {"http_backoff_cap": -320.0},
            {"rate_limit_backoff_initial": -60.0},
            {"rate_limit_backoff_cap": -960.0},
            {"dedup_window": 0},
            {"reorder_window": 0},
        ],
    )
    def test_degenerate_fields_raise_value_error(self, kwargs):
        """ConfigError doubles as ValueError, so generic callers that
        only know stdlib exception taxonomy still see the rejection."""
        with pytest.raises(ValueError):
            ResiliencePolicy(**kwargs)

    def test_frozen(self):
        policy = ResiliencePolicy()
        with pytest.raises(AttributeError):
            policy.jitter = 0.5


class TestRelativeRiskConfig:
    def test_paper_default_alpha(self):
        assert RelativeRiskConfig().alpha == 0.05

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_bad_alpha_rejected(self, bad):
        with pytest.raises(ConfigError, match="alpha"):
            RelativeRiskConfig(alpha=bad)

    def test_min_users_must_be_positive(self):
        with pytest.raises(ConfigError, match="min_users"):
            RelativeRiskConfig(min_users=0)


class TestUserClusteringConfig:
    def test_paper_default_k(self):
        assert UserClusteringConfig().k == 12

    @pytest.mark.parametrize("field,value", [
        ("k", 0), ("n_init", 0), ("max_iter", 0),
    ])
    def test_non_positive_rejected(self, field, value):
        with pytest.raises(ConfigError):
            UserClusteringConfig(**{field: value})


class TestStateClusteringConfig:
    def test_paper_default_affinity(self):
        assert StateClusteringConfig().affinity == "bhattacharyya"

    def test_unknown_linkage_rejected(self):
        with pytest.raises(ConfigError, match="linkage"):
            StateClusteringConfig(linkage="ward")

    def test_unknown_affinity_rejected(self):
        with pytest.raises(ConfigError, match="affinity"):
            StateClusteringConfig(affinity="cosine")

    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_valid_linkages(self, linkage):
        assert StateClusteringConfig(linkage=linkage).linkage == linkage


class TestAnalysisConfig:
    def test_bundles_defaults(self):
        config = AnalysisConfig()
        assert config.relative_risk.alpha == 0.05
        assert config.user_clustering.k == 12
        assert config.state_clustering.affinity == "bhattacharyya"

    def test_custom_sections(self):
        config = AnalysisConfig(relative_risk=RelativeRiskConfig(alpha=0.01))
        assert config.relative_risk.alpha == 0.01
        assert config.user_clustering.k == 12
