"""Tests for configuration validation."""

import pytest

from repro.config import (
    AnalysisConfig,
    CollectionConfig,
    RelativeRiskConfig,
    StateClusteringConfig,
    UserClusteringConfig,
)
from repro.errors import ConfigError


class TestCollectionConfig:
    def test_defaults_valid(self):
        config = CollectionConfig()
        assert config.prefer_geotag
        assert 0.0 <= config.min_confidence <= 1.0

    def test_empty_context_rejected(self):
        with pytest.raises(ConfigError, match="context_terms"):
            CollectionConfig(context_terms=())

    def test_empty_subject_rejected(self):
        with pytest.raises(ConfigError, match="subject_terms"):
            CollectionConfig(subject_terms=())

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_bad_confidence_rejected(self, bad):
        with pytest.raises(ConfigError, match="min_confidence"):
            CollectionConfig(min_confidence=bad)

    def test_frozen(self):
        config = CollectionConfig()
        with pytest.raises(AttributeError):
            config.min_confidence = 0.9


class TestRelativeRiskConfig:
    def test_paper_default_alpha(self):
        assert RelativeRiskConfig().alpha == 0.05

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_bad_alpha_rejected(self, bad):
        with pytest.raises(ConfigError, match="alpha"):
            RelativeRiskConfig(alpha=bad)

    def test_min_users_must_be_positive(self):
        with pytest.raises(ConfigError, match="min_users"):
            RelativeRiskConfig(min_users=0)


class TestUserClusteringConfig:
    def test_paper_default_k(self):
        assert UserClusteringConfig().k == 12

    @pytest.mark.parametrize("field,value", [
        ("k", 0), ("n_init", 0), ("max_iter", 0),
    ])
    def test_non_positive_rejected(self, field, value):
        with pytest.raises(ConfigError):
            UserClusteringConfig(**{field: value})


class TestStateClusteringConfig:
    def test_paper_default_affinity(self):
        assert StateClusteringConfig().affinity == "bhattacharyya"

    def test_unknown_linkage_rejected(self):
        with pytest.raises(ConfigError, match="linkage"):
            StateClusteringConfig(linkage="ward")

    def test_unknown_affinity_rejected(self):
        with pytest.raises(ConfigError, match="affinity"):
            StateClusteringConfig(affinity="cosine")

    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_valid_linkages(self, linkage):
        assert StateClusteringConfig(linkage=linkage).linkage == linkage


class TestAnalysisConfig:
    def test_bundles_defaults(self):
        config = AnalysisConfig()
        assert config.relative_risk.alpha == 0.05
        assert config.user_clustering.k == 12
        assert config.state_clustering.affinity == "bhattacharyya"

    def test_custom_sections(self):
        config = AnalysisConfig(relative_risk=RelativeRiskConfig(alpha=0.01))
        assert config.relative_risk.alpha == 0.01
        assert config.user_clustering.k == 12
