"""Tests for the US state gazetteer."""

import pytest

from repro.errors import GeoError
from repro.geo.gazetteer import (
    ALL_REGION_CODES,
    STATES,
    CensusRegion,
    state_by_abbrev,
    state_by_name,
    states_in_region,
    total_population,
)


class TestGazetteerContents:
    def test_fifty_states_plus_dc_and_pr(self):
        assert len(STATES) == 52

    def test_abbrevs_unique(self):
        assert len(set(ALL_REGION_CODES)) == 52

    def test_names_unique(self):
        assert len({state.name for state in STATES}) == 52

    def test_abbrevs_are_two_uppercase_letters(self):
        for code in ALL_REGION_CODES:
            assert len(code) == 2
            assert code.isupper()

    def test_populations_positive(self):
        for state in STATES:
            assert state.population > 0

    def test_california_most_populous(self):
        biggest = max(STATES, key=lambda state: state.population)
        assert biggest.abbrev == "CA"

    def test_total_population_plausible_2015(self):
        # ~321M US + PR, in thousands.
        assert 300_000 < total_population() < 340_000

    def test_kansas_is_midwest(self):
        assert state_by_abbrev("KS").region is CensusRegion.MIDWEST

    def test_midwest_has_twelve_states(self):
        assert len(states_in_region(CensusRegion.MIDWEST)) == 12

    def test_regions_partition_states(self):
        total = sum(
            len(states_in_region(region)) for region in CensusRegion
        )
        assert total == len(STATES)


class TestLookups:
    def test_by_abbrev(self):
        assert state_by_abbrev("MA").name == "Massachusetts"

    def test_by_abbrev_case_insensitive(self):
        assert state_by_abbrev("ks").name == "Kansas"

    def test_by_abbrev_strips_whitespace(self):
        assert state_by_abbrev(" LA ").name == "Louisiana"

    def test_by_abbrev_unknown_raises(self):
        with pytest.raises(GeoError, match="ZZ"):
            state_by_abbrev("ZZ")

    def test_by_name(self):
        assert state_by_name("Rhode Island").abbrev == "RI"

    def test_by_name_case_insensitive(self):
        assert state_by_name("kansas").abbrev == "KS"

    def test_by_name_unknown_raises(self):
        with pytest.raises(GeoError):
            state_by_name("Atlantis")
