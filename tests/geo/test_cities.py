"""Tests for the city → state table."""

from repro.geo.cities import CITY_TO_STATE, cities_in_state, city_state
from repro.geo.gazetteer import ALL_REGION_CODES


class TestCityTable:
    def test_all_values_are_known_states(self):
        valid = set(ALL_REGION_CODES)
        for city, state in CITY_TO_STATE.items():
            assert state in valid, f"{city} maps to unknown state {state}"

    def test_keys_are_lowercase(self):
        for city in CITY_TO_STATE:
            assert city == city.lower()

    def test_every_state_has_a_city(self):
        covered = set(CITY_TO_STATE.values())
        assert covered == set(ALL_REGION_CODES)

    def test_nola_is_louisiana(self):
        assert CITY_TO_STATE["nola"] == "LA"

    def test_wichita_is_kansas(self):
        assert CITY_TO_STATE["wichita"] == "KS"


class TestCityState:
    def test_known_city(self):
        assert city_state("Boston") == "MA"

    def test_case_and_whitespace(self):
        assert city_state("  cHiCaGo ") == "IL"

    def test_unknown_returns_none(self):
        assert city_state("gotham") is None


class TestCitiesInState:
    def test_kansas_cities(self):
        cities = cities_in_state("KS")
        assert "wichita" in cities
        assert "topeka" in cities

    def test_lowercase_abbrev_accepted(self):
        assert cities_in_state("ma") == cities_in_state("MA")

    def test_unknown_state_empty(self):
        assert cities_in_state("ZZ") == ()
