"""Tests for the location-string styler used by the synthetic world."""

import numpy as np
import pytest

from repro.geo.gazetteer import STATES, state_by_abbrev
from repro.geo.geocoder import Geocoder
from repro.geo.noise import JUNK_LOCATIONS, LocationStyler


@pytest.fixture()
def styler() -> LocationStyler:
    return LocationStyler(np.random.default_rng(42))


class TestStyleUs:
    def test_produces_nonempty_strings(self, styler):
        kansas = state_by_abbrev("KS")
        for __ in range(50):
            assert styler.style_us(kansas).strip()

    def test_most_styled_locations_geocode_to_their_state(self):
        """The styler and geocoder must agree ~90%+ of the time, or the
        pipeline's US yield calibration breaks."""
        rng = np.random.default_rng(0)
        styler = LocationStyler(rng)
        geocoder = Geocoder()
        hits = 0
        trials = 0
        for state in STATES:
            for __ in range(20):
                match = geocoder.geocode(styler.style_us(state))
                trials += 1
                if match.state == state.abbrev:
                    hits += 1
        assert hits / trials > 0.9

    def test_deterministic_given_seed(self):
        kansas = state_by_abbrev("KS")
        first = [LocationStyler(np.random.default_rng(9)).style_us(kansas)
                 for __ in range(1)]
        second = [LocationStyler(np.random.default_rng(9)).style_us(kansas)
                  for __ in range(1)]
        assert first == second


class TestStyleJunk:
    def test_junk_never_geocodes(self, styler):
        geocoder = Geocoder()
        for junk in JUNK_LOCATIONS:
            assert not geocoder.geocode(junk).resolved, junk

    def test_style_junk_draws_from_pool(self, styler):
        for __ in range(20):
            assert styler.style_junk() in JUNK_LOCATIONS
