"""Tests for the free-text geocoder."""

import pytest

from repro.geo.geocoder import GeoMatch, Geocoder


@pytest.fixture(scope="module")
def geocoder() -> Geocoder:
    return Geocoder()


class TestCommaPatterns:
    def test_city_comma_abbrev(self, geocoder):
        match = geocoder.geocode("Wichita, KS")
        assert match.is_us_state
        assert match.state == "KS"
        assert match.confidence >= 0.9

    def test_city_comma_full_name(self, geocoder):
        match = geocoder.geocode("Baton Rouge, Louisiana")
        assert match.state == "LA"

    def test_lowercase_abbrev_in_comma_context(self, geocoder):
        # Comma context disambiguates even word-collision codes.
        match = geocoder.geocode("indianapolis, in")
        assert match.state == "IN"

    def test_state_comma_usa(self, geocoder):
        match = geocoder.geocode("Kansas, USA")
        assert match.state == "KS"

    def test_city_comma_usa_resolves_via_head(self, geocoder):
        match = geocoder.geocode("Boston, USA")
        assert match.state == "MA"

    def test_unknown_comma_usa_is_country_only(self, geocoder):
        match = geocoder.geocode("Smallville, USA")
        assert match.country == "US"
        assert match.state is None
        assert not match.is_us_state


class TestStateNames:
    def test_bare_state_name(self, geocoder):
        assert geocoder.geocode("Kansas").state == "KS"

    def test_state_name_embedded_in_noise(self, geocoder):
        match = geocoder.geocode("living my best life in kansas ☀")
        assert match.state == "KS"

    def test_west_virginia_not_virginia(self, geocoder):
        assert geocoder.geocode("West Virginia").state == "WV"

    def test_virginia_still_matches(self, geocoder):
        assert geocoder.geocode("Virginia").state == "VA"

    def test_nickname(self, geocoder):
        assert geocoder.geocode("the sunshine state").state == "FL"

    def test_washington_state_vs_dc(self, geocoder):
        # Bare "Washington" resolves to the city table entry (DC),
        # mirroring Nominatim's importance ranking.
        assert geocoder.geocode("Washington").state in ("WA", "DC")


class TestBareAbbrevs:
    def test_uppercase_code(self, geocoder):
        assert geocoder.geocode("KS").state == "KS"

    def test_lowercase_word_collision_not_matched(self, geocoder):
        # "in", "or", "hi" are English words; a bare lowercase token must
        # not geocode to Indiana/Oregon/Hawaii.
        for token in ("in", "or", "hi", "me", "ok"):
            match = geocoder.geocode(token)
            assert not match.is_us_state, token

    def test_uppercase_collision_codes_do_match(self, geocoder):
        assert geocoder.geocode("IN").state == "IN"
        assert geocoder.geocode("OR").state == "OR"


class TestCities:
    def test_bare_city(self, geocoder):
        assert geocoder.geocode("Wichita").state == "KS"

    def test_city_nickname(self, geocoder):
        assert geocoder.geocode("NOLA").state == "LA"

    def test_city_with_prefix_noise(self, geocoder):
        assert geocoder.geocode("downtown wichita").state == "KS"


class TestZipCodes:
    def test_city_state_zip(self, geocoder):
        assert geocoder.geocode("Wichita, KS 67202").state == "KS"

    def test_zip_plus_four(self, geocoder):
        assert geocoder.geocode("Boston, MA 02134-1000").state == "MA"

    def test_state_name_with_zip(self, geocoder):
        assert geocoder.geocode("Kansas 67202").state == "KS"

    def test_bare_zip_unresolved(self, geocoder):
        assert not geocoder.geocode("67202").resolved


class TestMetroAreas:
    @pytest.mark.parametrize(
        "metro,state",
        [
            ("Bay Area", "CA"),
            ("twin cities", "MN"),
            ("PNW", "WA"),
            ("the DMV", "DC"),
            ("South Florida", "FL"),
        ],
    )
    def test_metro_resolves(self, geocoder, metro, state):
        match = geocoder.geocode(metro)
        assert match.state == state

    def test_metro_embedded_in_noise(self, geocoder):
        match = geocoder.geocode("living my best bay area life")
        assert match.state == "CA"
        assert match.confidence < 0.7

    def test_state_name_beats_metro(self, geocoder):
        # Explicit state information should win over metro nicknames.
        assert geocoder.geocode("bay area, TX").state == "TX"


class TestCountryAndForeign:
    def test_usa_alone(self, geocoder):
        match = geocoder.geocode("USA")
        assert match.country == "US"
        assert match.state is None

    def test_foreign_city(self, geocoder):
        match = geocoder.geocode("London")
        assert match.resolved
        assert match.country != "US"
        assert not match.is_us_state

    def test_foreign_comma_pattern(self, geocoder):
        match = geocoder.geocode("Somewhere, Canada")
        assert match.country and match.country != "US"

    @pytest.mark.parametrize(
        "city,code",
        [
            ("Vancouver", "CA-BC"),
            ("Montreal", "CA-QC"),
            ("Toronto", "CA-ON"),
        ],
    )
    def test_canadian_cities_get_province_accurate_codes(
        self, geocoder, city, code
    ):
        """Regression: Vancouver and Montreal were mapped to Ontario."""
        match = geocoder.geocode(city)
        assert match.country == code
        assert not match.is_us_state

    def test_comma_abbrev_matches_without_country_term(self, geocoder):
        # The abbrev branch must fire on the gazetteer hit alone; the old
        # `tail in US-country-terms` clause was dead (no state code is a
        # country term) and is gone.
        match = geocoder.geocode("Wichita, KS")
        assert match.state == "KS"
        assert match.source == "comma-abbrev"

    def test_metro_patterns_precompiled(self, geocoder):
        # The embedded-metro path must use patterns built at construction
        # time (the hot path must not compile per call).
        assert geocoder._metro_patterns
        match = geocoder.geocode("deep in the pacific northwest somewhere")
        assert match.state == "WA"
        assert match.source == "metro-embedded"


class TestUnresolved:
    @pytest.mark.parametrize(
        "junk",
        ["", None, "somewhere over the rainbow", "🌍", "your heart",
         "the internet", "    ", "!!!"],
    )
    def test_junk_is_unresolved(self, geocoder, junk):
        match = geocoder.geocode(junk)
        assert not match.resolved
        assert match.confidence == 0.0

    def test_never_raises_on_weird_unicode(self, geocoder):
        for text in ("日本", "🌮🌮🌮", "a" * 500, ",,,", "., ., ."):
            geocoder.geocode(text)  # must not raise


class TestGeoMatch:
    def test_unresolved_factory(self):
        match = GeoMatch.unresolved()
        assert not match.resolved
        assert not match.is_us_state

    def test_us_state_requires_state(self):
        match = GeoMatch(country="US", state=None, confidence=0.6, source="x")
        assert not match.is_us_state

    def test_caching_returns_equal_results(self, geocoder):
        first = geocoder.geocode("Wichita, KS")
        second = geocoder.geocode("Wichita, KS")
        assert first == second
