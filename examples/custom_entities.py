"""The characterization method on a custom entity set.

The paper's method is an adaptation of a football-supporter
characterization (Pacheco et al. 2016, its ref [12]) — nothing in
Eqs. 1-3 is organ-specific.  This example characterizes attention to
football clubs with the generic API (:mod:`repro.core.entities`): the
same attention matrix, argmax membership, and K = (LᵀL)⁻¹LᵀÛ, over a
different target vocabulary.

Run:
    python examples/custom_entities.py
"""

from __future__ import annotations

import numpy as np

from repro.core.entities import (
    GenericAttention,
    aggregate_by_groups,
    aggregate_by_top_target,
)

CLUBS = ["sport", "santa cruz", "nautico", "america-rn"]

#: Directed "rivalry attention": supporters of club i spend their
#: non-club attention mostly on their rivals — the football analogue of
#: the organ co-attention structure of Fig. 3.
RIVALRY = np.array([
    [0.00, 0.60, 0.35, 0.05],
    [0.55, 0.00, 0.40, 0.05],
    [0.45, 0.45, 0.00, 0.10],
    [0.30, 0.30, 0.40, 0.00],
])

CLUB_SHARE = np.array([0.40, 0.32, 0.23, 0.05])
CITIES = ["recife", "natal"]


def synthesize_supporters(n: int, rng: np.random.Generator):
    """Supporters mentioning clubs on (synthetic) social media."""
    ids, counts, cities = [], [], {}
    for supporter in range(n):
        club = rng.choice(len(CLUBS), p=CLUB_SHARE)
        attention = 0.85 * np.eye(len(CLUBS))[club] + 0.15 * RIVALRY[club]
        mentions = rng.multinomial(rng.integers(1, 12), attention)
        if mentions.sum() == 0:
            mentions[club] = 1
        identifier = f"supporter{supporter}"
        ids.append(identifier)
        counts.append(mentions)
        # america-rn is from Natal; the rest are Recife clubs.
        home = "natal" if club == 3 else "recife"
        cities[identifier] = home if rng.random() < 0.9 else (
            "natal" if home == "recife" else "recife"
        )
    return ids, np.array(counts), cities


def main() -> None:
    rng = np.random.default_rng(16)
    ids, counts, cities = synthesize_supporters(4000, rng)
    attention = GenericAttention.from_counts(ids, CLUBS, counts)

    print("# club characterization (Eq. 1 + Eq. 3 on a custom target set)")
    by_club = aggregate_by_top_target(attention)
    for club in by_club.group_labels:
        profile = by_club.profile(club)
        rival, share = profile[1]
        print(f"  {club:<12} fans' top rival in conversation: "
              f"{rival} ({share:.3f})")

    print("\n# city characterization (Eq. 2 + Eq. 3)")
    by_city = aggregate_by_groups(attention, cities, labels=CITIES)
    for city in by_city.group_labels:
        profile = by_city.profile(city)
        leader, share = profile[0]
        print(f"  {city:<8} most-supported club: {leader} ({share:.3f})")

    natal = by_city.profile("natal")
    america_share = dict(natal)["america-rn"]
    print(f"\n# america-rn attention is {america_share:.2f} in natal vs "
          f"{dict(by_city.profile('recife'))['america-rn']:.2f} in recife — "
          "the geographic anomaly detection of Fig. 5, on football")


if __name__ == "__main__":
    main()
