"""Quickstart: collect a synthetic organ-donation tweet stream and
characterize organs and states, in ~40 lines.

Run:
    python examples/quickstart.py
"""

from repro import (
    CollectionPipeline,
    ExperimentSuite,
    Organ,
    SyntheticWorld,
    paper2016_scenario,
)


def main() -> None:
    # 1. A calibrated synthetic twittersphere (the 2015-16 Twitter data is
    #    no longer obtainable; see DESIGN.md for the substitution).
    world = SyntheticWorld(paper2016_scenario(scale=0.02, seed=7))

    # 2. The paper's three-step pipeline: keyword filter -> locate -> US.
    corpus, report = CollectionPipeline().run(world.firehose())
    print(f"collected {report.collected:,} tweets, retained "
          f"{report.retained:,} from US users ({report.us_yield:.1%})\n")

    # 3. Characterize.  The suite shares the attention matrix across
    #    experiments.
    suite = ExperimentSuite(corpus, report)

    print(suite.run_table1().render())
    print()

    # Who talks about what, and with which organ co-attention?
    organs = suite.run_fig3().characterization
    top = organs.top_co_organ(Organ.HEART)
    print(f"heart-focused users co-mention {top.value} the most\n")

    # Which states over-index on which organ conversations?
    highlights = suite.run_fig5()
    print(highlights.render())


if __name__ == "__main__":
    main()
