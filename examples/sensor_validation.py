"""Closing the loop: is the social sensor measuring something real?

The paper's hypothesis (§I) is that social media can sense organ-donation
awareness; its strongest evidence is a coincidence — Kansas is both the
only Midwest state with excess kidney *conversation* (their Twitter data)
and the only Midwest state with a deceased kidney-donor *surplus* (Cao et
al.'s registry data).  With both worlds simulated here, this example runs
the full cross-validation:

1. simulate the twittersphere and run the paper's pipeline + Eq. 4,
2. simulate the transplant registry over Cao et al.'s 6-year window,
3. compare: which states do both sides flag, and how do per-state
   conversation RR and donor rates correlate?

Run:
    python examples/sensor_validation.py
    python examples/sensor_validation.py --scale 0.25 --years 6
"""

from __future__ import annotations

import argparse

from repro import CollectionPipeline, Organ, SyntheticWorld, paper2016_scenario
from repro.core.relative_risk import state_organ_risks
from repro.registry.config import calibrated_2012_config
from repro.registry.model import TransplantRegistry
from repro.registry.statistics import summarize_registry
from repro.registry.validation import sensor_validity


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.12)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--years", type=int, default=6,
                        help="registry horizon (Cao et al. used 6 years)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    print("# side 1: the social sensor (synthetic twittersphere)")
    world = SyntheticWorld(paper2016_scenario(scale=args.scale, seed=args.seed))
    corpus, report = CollectionPipeline().run(world.firehose())
    risks = state_organ_risks(corpus)
    print(f"#   {report.retained:,} US tweets, {corpus.n_users:,} users\n")

    print(f"# side 2: the transplant registry ({args.years}-year horizon)")
    registry = TransplantRegistry(
        calibrated_2012_config(seed=3, months=12 * args.years)
    ).run()
    stats = summarize_registry(registry)
    print(f"#   deaths/day {stats.deaths_per_day:.1f}, kidney waitlist "
          f"{stats.national_waitlist[Organ.KIDNEY]:,.0f}\n")

    print("# cross-validation, per organ")
    for organ in Organ:
        validity = sensor_validity(risks, stats, organ)
        joint = ", ".join(validity.jointly_flagged) or "—"
        print(
            f"  {organ.value:<10} sensor={list(validity.sensor_states)} "
            f"registry={list(validity.registry_states)} joint=[{joint}] "
            f"rank-r={validity.correlation.r:+.2f}"
        )

    kidney = sensor_validity(risks, stats, Organ.KIDNEY)
    print()
    if "KS" in kidney.jointly_flagged:
        print("=> the Kansas kidney coincidence reproduces: the state the "
              "sensor flags for kidney conversation is a registry donor-"
              "surplus state — the paper's validity argument, end to end.")
    else:
        print("=> Kansas not jointly flagged at this scale; increase "
              "--scale (sensor power) or --years (registry power).")


if __name__ == "__main__":
    main()
