"""Full paper reproduction: regenerate Table I and Figures 2-7.

Run:
    python examples/reproduce_paper.py                 # default scale 0.12
    python examples/reproduce_paper.py --scale 1.0     # paper-scale volumes
    python examples/reproduce_paper.py --scale 0.05 --seed 3 --out results/

At scale 1.0 the synthetic world approximates the paper's Table I volumes
(~975k keyword-matched tweets, ~72k located US users); expect a few
minutes of runtime.  Every artifact prints to stdout and, with --out, is
also written to one text file per artifact.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro import (
    CollectionPipeline,
    ExperimentSuite,
    SyntheticWorld,
    paper2016_scenario,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.12,
                        help="dataset size relative to the paper (1.0 ≈ Table I)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write per-artifact text files")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    started = time.time()

    print(f"# generating world (scale={args.scale}, seed={args.seed})")
    world = SyntheticWorld(paper2016_scenario(scale=args.scale, seed=args.seed))
    print(f"#   {world.n_users:,} users, {world.n_on_topic_tweets:,} on-topic tweets")

    print("# running collection pipeline (§III-A)")
    corpus, report = CollectionPipeline().run(world.firehose())
    print(f"#   retained {report.retained:,} US tweets "
          f"({report.us_yield:.1%} yield) in {time.time() - started:.0f}s")

    suite = ExperimentSuite(corpus, report)
    artifacts = {
        "fig1": suite.run_fig1().render(),
        "table1": suite.run_table1().render(),
        "fig2": suite.run_fig2().render(),
        "fig3": suite.run_fig3().render(),
        "fig4": suite.run_fig4().render(
            states=("KS", "LA", "MA", "CA", "TX", "NY", "CO", "OR")
        ),
        "fig5": suite.run_fig5().render(),
        "fig6": suite.run_fig6().render(n_clusters=5),
        "fig7": suite.run_fig7().render(),
        "secondary": suite.run_secondary().render(),
    }

    for name, text in artifacts.items():
        print(f"\n{'=' * 72}\n# {name}\n{'=' * 72}")
        print(text)

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for name, text in artifacts.items():
            (args.out / f"{name}.txt").write_text(text + "\n")
        print(f"\n# wrote {len(artifacts)} artifacts to {args.out}/")

    print(f"\n# total runtime: {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
