"""Real-time awareness monitoring — the paper's concluding vision.

"Our findings suggest that the proposed approach has the potential to
characterize the awareness of organ donation in real-time."  This example
replays the synthetic firehose through a rolling-window sensor and prints
a ticker of awareness snapshots: per-organ conversation volume and any
state whose organ conversations spike above the national baseline inside
the window.

Run:
    python examples/streaming_monitor.py
    python examples/streaming_monitor.py --window-days 45 --scale 0.05
"""

from __future__ import annotations

import argparse
from datetime import timedelta

from repro import Organ, SyntheticWorld, paper2016_scenario
from repro.config import RelativeRiskConfig
from repro.sensor import RollingAwarenessSensor


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.06)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--window-days", type=int, default=60)
    parser.add_argument("--emit-every", type=int, default=2000,
                        help="snapshot cadence, in retained tweets")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    world = SyntheticWorld(paper2016_scenario(scale=args.scale, seed=args.seed))
    sensor = RollingAwarenessSensor(
        window=timedelta(days=args.window_days),
        relative_risk=RelativeRiskConfig(min_users=15),
    )

    print(f"# monitoring a replayed firehose of {world.n_users:,} users "
          f"({args.window_days}-day rolling window)\n")
    header = "window end       tweets  users  " + "  ".join(
        organ.value[:4] for organ in Organ
    ) + "  spiking states"
    print(header)
    print("-" * len(header))

    for snapshot in sensor.run(world.firehose(), emit_every=args.emit_every):
        volumes = "  ".join(
            f"{snapshot.users_by_organ[organ]:>4}" for organ in Organ
        )
        spiking = ", ".join(
            f"{state}:{'+'.join(o.value for o in snapshot.highlights[state])}"
            for state in snapshot.emerging_states()
        ) or "—"
        print(
            f"{snapshot.window_end:%Y-%m-%d %H:%M}  "
            f"{snapshot.n_tweets:>6,}  {snapshot.n_users:>5,}  "
            f"{volumes}  {spiking}"
        )

    print(f"\n# stream finished: {sensor.seen:,} tweets seen, "
          f"{sensor.retained:,} retained")


if __name__ == "__main__":
    main()
