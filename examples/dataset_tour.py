"""A tour of the secondary analyses — everything §IV/§V discusses but
never plots.

Walks one collected corpus through:

* organ co-mention structure vs the dual-transplant pairs (§IV-A),
* bootstrap stability of the Fig. 3 readings (§IV-A's intestine caveat),
* conversation threads and the support-group signal (ref [13]),
* daily volume, bursts, and temporal stationarity,
* Twitter demographic bias vs census population (§V),
* the global state × organ chi-square test (the significance backdrop
  behind Fig. 5's per-state relative risks).

Run:
    python examples/dataset_tour.py
    python examples/dataset_tour.py --scale 0.12
"""

from __future__ import annotations

import argparse

from repro import CollectionPipeline, Organ, SyntheticWorld, paper2016_scenario
from repro.analysis import (
    co_attention_stability,
    organ_characterization_stability,
    organ_co_occurrence,
    representation_bias,
)
from repro.analysis.timeseries import daily_series, detect_bursts
from repro.core.attention import build_attention_matrix
from repro.geo.gazetteer import CensusRegion
from repro.network.conversations import thread_homogeneity
from repro.stats.contingency import chi_square_independence, state_organ_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.08)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    world = SyntheticWorld(paper2016_scenario(scale=args.scale, seed=args.seed))
    corpus, report = CollectionPipeline().run(world.firehose())
    print(f"# corpus: {len(corpus):,} tweets, {corpus.n_users:,} users "
          f"({report.us_yield:.1%} of collected)\n")

    print("## organ co-mentions (§IV-A)")
    co = organ_co_occurrence(corpus, level="user")
    for a, b, count, lift in co.top_pairs(k=3):
        print(f"  {a.value}+{b.value}: {count} users (lift {lift:.2f})")
    print(f"  dual-transplant pairs' mean frequency rank: "
          f"{co.dual_transplant_rank():.1f}\n")

    print("## bootstrap stability of Fig. 3 readings (§IV-A caveat)")
    attention = build_attention_matrix(corpus)
    stability = co_attention_stability(attention, n_replicates=50, seed=1)
    for organ in (Organ.HEART, Organ.KIDNEY, Organ.INTESTINE):
        result = stability[organ]
        print(f"  {organ.value:<10} top={result.full_data_top.value:<8} "
              f"stability {result.stability:.0%} "
              f"({result.group_size:,} users)")
    print()

    print("## conversation threads (ref [13])")
    threads = thread_homogeneity(corpus)
    print(f"  {threads.n_conversations} multi-participant threads; "
          f"single-organ rate {threads.observed_single_organ_rate:.0%} vs "
          f"{threads.shuffled_single_organ_rate:.0%} chance "
          f"(lift {threads.lift:.1f}×)\n")

    print("## temporal structure")
    series = daily_series(corpus)
    bursts = detect_bursts(series, window=14, threshold=4.0)
    print(f"  {series.n_days} days, {series.mean_per_day:.1f} tweets/day, "
          f"{len(bursts)} bursts at 4σ")
    halves = organ_characterization_stability(corpus)
    print(f"  half-vs-half K-row distance {halves.mean_row_distance:.4f}; "
          f"top-co-organ agreement {halves.top_co_organ_agreement:.0%}\n")

    print("## demographic bias (§V)")
    bias = representation_bias(corpus)
    for region in (CensusRegion.NORTHEAST, CensusRegion.MIDWEST,
                   CensusRegion.SOUTH, CensusRegion.WEST):
        print(f"  {region.value:<10} representation ratio "
              f"{bias.region_ratio[region]:.2f}")
    print()

    print("## global state × organ dependence")
    table, __ = state_organ_table(corpus)
    chi = chi_square_independence(table)
    print(f"  X² = {chi.statistic:.0f} (dof {chi.dof}), "
          f"p = {chi.p_value:.2g}, Cramér's V = {chi.cramers_v:.3f}")
    print("  => organ attention depends on state; Fig. 5 localizes where.")


if __name__ == "__main__":
    main()
