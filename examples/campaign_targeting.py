"""Campaign targeting: the intro's motivating use case.

Research cited by the paper ([8], the "Facebook effect") shows social
media campaigns can raise donor registrations.  This example turns the
characterization into an actionable plan for an organ-specific campaign:

1. Where? — states whose conversations already over-index on the organ
   (receptive audiences, per Fig. 5's relative risk), plus the states
   most *similar* to them in organ-attention signature (Fig. 6's zones).
2. Who? — user segments from the Fig. 7 K-Means clustering whose profile
   concentrates on the organ (seed advocates) and the broad-attention
   cluster (amplifiers).

Run:
    python examples/campaign_targeting.py --organ kidney
    python examples/campaign_targeting.py --organ lung --scale 0.1
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    CollectionPipeline,
    ExperimentSuite,
    Organ,
    SyntheticWorld,
    paper2016_scenario,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--organ", default="kidney",
                        choices=[organ.value for organ in Organ])
    parser.add_argument("--scale", type=float, default=0.12)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    organ = Organ.from_name(args.organ)

    world = SyntheticWorld(paper2016_scenario(scale=args.scale, seed=args.seed))
    corpus, report = CollectionPipeline().run(world.firehose())
    suite = ExperimentSuite(corpus, report)

    print(f"# campaign plan: {organ.value} donation awareness")
    print(f"# based on {report.retained:,} US tweets from "
          f"{corpus.n_users:,} users\n")

    # --- Where: receptive states (significant conversation excess) ---
    fig5 = suite.run_fig5()
    receptive = sorted(
        state for state, organs in fig5.highlights.items() if organ in organs
    )
    print("## receptive states (significant excess of "
          f"{organ.value} conversation)")
    for risk in sorted(
        (r for r in fig5.risks if r.organ is organ and r.highlighted),
        key=lambda r: -r.result.rr,
    ):
        print(f"  {risk.state}: RR = {risk.result.rr:.2f} "
              f"(95% CI {risk.result.ci_low:.2f}-{risk.result.ci_high:.2f}, "
              f"{risk.n_state_users} users)")
    if not receptive:
        print("  none significant — consider a national campaign")

    # --- Where next: similar states by attention signature ---
    clustering = suite.run_fig6().clustering
    states = list(clustering.states)
    matrix = clustering.distance_matrix
    expansion: dict[str, float] = {}
    for anchor in receptive:
        row = matrix[states.index(anchor)]
        for index in np.argsort(row)[1:4]:
            candidate = states[int(index)]
            if candidate not in receptive:
                distance = float(row[int(index)])
                best = expansion.get(candidate)
                expansion[candidate] = min(best, distance) if best else distance
    print("\n## expansion states (nearest signatures to receptive states)")
    for state, distance in sorted(expansion.items(), key=lambda kv: kv[1])[:5]:
        print(f"  {state}: Bhattacharyya distance {distance:.4f}")

    # --- Who: user segments from the Fig. 7 clustering ---
    fig7 = suite.run_fig7().clustering
    sizes = fig7.relative_sizes()
    print("\n## user segments")
    advocates = [
        cluster for cluster in range(fig7.k)
        if fig7.cluster_profile(cluster)[0][0] is organ
        and fig7.n_focus_organs(cluster) == 1
    ]
    for cluster in advocates:
        print(f"  seed advocates — cluster {cluster}: "
              f"{sizes[cluster]:.1%} of users, "
              f"{organ.value} share {fig7.cluster_profile(cluster)[0][1]:.2f}")
    broad = max(range(fig7.k), key=lambda c: fig7.n_focus_organs(c, 0.08))
    print(f"  amplifiers — cluster {broad}: {sizes[broad]:.1%} of users, "
          f"attend to {fig7.n_focus_organs(broad, 0.08)} organs")

    # --- Cross-organ bridge: who else to message (Fig. 3) ---
    organ_char = suite.run_fig3().characterization
    bridges = [
        other.value
        for other in organ_char.characterized_organs()
        if other is not organ and organ_char.top_co_organ(other) is organ
    ]
    if bridges:
        print(f"\n## bridge audiences: users focused on "
              f"{', '.join(bridges)} co-attend {organ.value} most — "
              "adjacent communities worth including")

    # --- Simulate the campaign on the follower graph (§V's vision) ---
    from repro.network import CampaignStrategy, GraphConfig, build_follower_graph, run_campaign

    print("\n## simulated campaign (independent-cascade on the follower graph)")
    graph = build_follower_graph(world, GraphConfig(seed=args.seed))
    for strategy in (
        CampaignStrategy.TOP_FOLLOWERS,
        CampaignStrategy.SEGMENT,
    ):
        outcome = run_campaign(
            graph, strategy, organ, budget=10, n_simulations=15,
            receptive_states=tuple(receptive), seed=args.seed,
        )
        print(
            f"  {strategy.value:<14} expected reach "
            f"{outcome.mean_reach:8.0f} users, on-topic awareness "
            f"{outcome.mean_aligned_reach:7.0f} "
            f"(alignment {outcome.alignment:.2f})"
        )
    if receptive:
        outcome = run_campaign(
            graph, CampaignStrategy.RECEPTIVE_STATES, organ, budget=10,
            n_simulations=15, receptive_states=tuple(receptive),
            seed=args.seed,
        )
        print(
            f"  {outcome.strategy.value:<14} expected reach "
            f"{outcome.mean_reach:8.0f} users, on-topic awareness "
            f"{outcome.mean_aligned_reach:7.0f} "
            f"(alignment {outcome.alignment:.2f})"
        )


if __name__ == "__main__":
    main()
